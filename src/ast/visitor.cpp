#include "ast/visitor.h"

namespace hsm::ast {

void RecursiveVisitor::traverseUnit(TranslationUnit& unit) {
  for (TopLevel& tl : unit.topLevels()) {
    if (tl.kind == TopLevel::Kind::Vars) {
      for (VarDecl* var : tl.vars) traverseVarDecl(var);
    } else if (tl.function != nullptr) {
      traverseFunction(*tl.function);
    }
  }
}

void RecursiveVisitor::traverseFunction(FunctionDecl& fn) {
  visitFunctionDecl(fn);
  FunctionDecl* const saved = current_function_;
  current_function_ = &fn;
  for (ParamDecl* p : fn.params()) {
    if (p != nullptr) visitVarDecl(*p);
  }
  if (fn.body() != nullptr) traverseStmt(fn.body());
  current_function_ = saved;
}

void RecursiveVisitor::traverseVarDecl(VarDecl* var) {
  if (var == nullptr) return;
  visitVarDecl(*var);
  if (var->init() != nullptr) traverseExpr(var->init(), AccessContext::Read);
}

void RecursiveVisitor::traverseStmt(Stmt* stmt) {
  if (stmt == nullptr) return;
  visitStmt(*stmt);
  switch (stmt->kind()) {
    case StmtKind::Compound: {
      auto& compound = static_cast<CompoundStmt&>(*stmt);
      // Copy: transform passes may edit the body while another visitor runs.
      const std::vector<Stmt*> body = compound.body();
      for (Stmt* s : body) traverseStmt(s);
      break;
    }
    case StmtKind::Decl: {
      auto& decl_stmt = static_cast<DeclStmt&>(*stmt);
      for (VarDecl* var : decl_stmt.decls()) traverseVarDecl(var);
      break;
    }
    case StmtKind::Expr:
      traverseExpr(static_cast<ExprStmt&>(*stmt).expr());
      break;
    case StmtKind::If: {
      auto& if_stmt = static_cast<IfStmt&>(*stmt);
      traverseExpr(if_stmt.cond());
      enterIfBranch(if_stmt);
      traverseStmt(if_stmt.thenStmt());
      traverseStmt(if_stmt.elseStmt());
      exitIfBranch(if_stmt);
      break;
    }
    case StmtKind::For: {
      auto& for_stmt = static_cast<ForStmt&>(*stmt);
      traverseStmt(for_stmt.init());
      if (for_stmt.cond() != nullptr) traverseExpr(for_stmt.cond());
      if (for_stmt.step() != nullptr) traverseExpr(for_stmt.step());
      ++loop_depth_;
      enterLoopBody(for_stmt);
      traverseStmt(for_stmt.body());
      exitLoopBody(for_stmt);
      --loop_depth_;
      break;
    }
    case StmtKind::While: {
      auto& while_stmt = static_cast<WhileStmt&>(*stmt);
      traverseExpr(while_stmt.cond());
      ++loop_depth_;
      enterLoopBody(while_stmt);
      traverseStmt(while_stmt.body());
      exitLoopBody(while_stmt);
      --loop_depth_;
      break;
    }
    case StmtKind::Do: {
      auto& do_stmt = static_cast<DoStmt&>(*stmt);
      ++loop_depth_;
      enterLoopBody(do_stmt);
      traverseStmt(do_stmt.body());
      exitLoopBody(do_stmt);
      --loop_depth_;
      traverseExpr(do_stmt.cond());
      break;
    }
    case StmtKind::Return: {
      auto& ret = static_cast<ReturnStmt&>(*stmt);
      if (ret.value() != nullptr) traverseExpr(ret.value());
      break;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Null:
      break;
  }
}

void RecursiveVisitor::traverseExpr(Expr* expr, AccessContext ctx) {
  if (expr == nullptr) return;
  visitExpr(*expr, ctx);
  switch (expr->kind()) {
    case ExprKind::IntLiteral:
    case ExprKind::FloatLiteral:
    case ExprKind::CharLiteral:
    case ExprKind::StringLiteral:
      break;
    case ExprKind::DeclRef:
      visitDeclRef(static_cast<DeclRefExpr&>(*expr), ctx);
      break;
    case ExprKind::Unary: {
      auto& unary = static_cast<UnaryExpr&>(*expr);
      switch (unary.op()) {
        case UnaryOp::AddrOf:
          traverseExpr(unary.operand(), AccessContext::AddressOf);
          break;
        case UnaryOp::PreInc:
        case UnaryOp::PreDec:
        case UnaryOp::PostInc:
        case UnaryOp::PostDec:
          traverseExpr(unary.operand(), AccessContext::ReadWrite);
          break;
        case UnaryOp::Deref:
          // The pointer itself is read; the pointed-to object inherits the
          // surrounding context, which analysis handles at the DeclRef level.
          traverseExpr(unary.operand(), AccessContext::Read);
          break;
        default:
          traverseExpr(unary.operand(), AccessContext::Read);
          break;
      }
      break;
    }
    case ExprKind::Binary: {
      auto& binary = static_cast<BinaryExpr&>(*expr);
      if (isAssignmentOp(binary.op())) {
        traverseExpr(binary.lhs(), isCompoundAssignmentOp(binary.op())
                                       ? AccessContext::ReadWrite
                                       : AccessContext::Write);
        traverseExpr(binary.rhs(), AccessContext::Read);
      } else {
        traverseExpr(binary.lhs(), AccessContext::Read);
        traverseExpr(binary.rhs(), AccessContext::Read);
      }
      break;
    }
    case ExprKind::Conditional: {
      auto& cond = static_cast<ConditionalExpr&>(*expr);
      traverseExpr(cond.cond(), AccessContext::Read);
      traverseExpr(cond.thenExpr(), ctx);
      traverseExpr(cond.elseExpr(), ctx);
      break;
    }
    case ExprKind::Call: {
      auto& call = static_cast<CallExpr&>(*expr);
      // Deliberately do not traverse the callee as a value read; the callee
      // name is reported through visitCall.
      for (Expr* arg : call.args()) traverseExpr(arg, AccessContext::Read);
      visitCall(call);
      break;
    }
    case ExprKind::Index: {
      auto& index = static_cast<IndexExpr&>(*expr);
      // `a[i] = x` writes a's element but reads the index; the base array
      // reference carries the surrounding access context. Taking the address
      // of an element (&a[i]) still *reads* the base binding to compute the
      // address — the paper counts `&threads[local]` as a read of `threads`.
      traverseExpr(index.base(),
                   ctx == AccessContext::AddressOf ? AccessContext::Read : ctx);
      traverseExpr(index.index(), AccessContext::Read);
      break;
    }
    case ExprKind::Member:
      traverseExpr(static_cast<MemberExpr&>(*expr).base(), ctx);
      break;
    case ExprKind::Cast:
      traverseExpr(static_cast<CastExpr&>(*expr).operand(), ctx);
      break;
    case ExprKind::Sizeof: {
      auto& size_of = static_cast<SizeofExpr&>(*expr);
      // sizeof does not evaluate its operand; skip traversal to keep
      // read/write counts faithful.
      (void)size_of;
      break;
    }
    case ExprKind::InitList:
      for (Expr* e : static_cast<InitListExpr&>(*expr).inits()) {
        traverseExpr(e, AccessContext::Read);
      }
      break;
  }
}

}  // namespace hsm::ast

#include "ast/type.h"

namespace hsm::ast {

std::string Type::spelling() const {
  switch (kind_) {
    case TypeKind::Void: return "void";
    case TypeKind::Char: return "char";
    case TypeKind::Short: return "short";
    case TypeKind::Int: return "int";
    case TypeKind::Long: return "long";
    case TypeKind::UnsignedChar: return "unsigned char";
    case TypeKind::UnsignedShort: return "unsigned short";
    case TypeKind::UnsignedInt: return "unsigned int";
    case TypeKind::UnsignedLong: return "unsigned long";
    case TypeKind::Float: return "float";
    case TypeKind::Double: return "double";
    case TypeKind::Pointer: return element_->spelling() + "*";
    case TypeKind::Array:
      return element_->spelling() + "[" + std::to_string(array_length_) + "]";
    case TypeKind::Named: return name_;
  }
  return "<invalid>";
}

TypeTable::TypeTable() {
  const TypeKind builtin_kinds[] = {
      TypeKind::Void,         TypeKind::Char,          TypeKind::Short,
      TypeKind::Int,          TypeKind::Long,          TypeKind::UnsignedChar,
      TypeKind::UnsignedShort, TypeKind::UnsignedInt,  TypeKind::UnsignedLong,
      TypeKind::Float,        TypeKind::Double,
  };
  for (TypeKind kind : builtin_kinds) {
    storage_.push_back(std::make_unique<Type>(kind, nullptr, 0, ""));
    builtins_[kind] = storage_.back().get();
  }
  // Pthread opaque types on IA-32 Linux (NPTL); sizes used by the partitioner
  // when such a type survives analysis (normally the translator removes them).
  setNamedTypeSize("pthread_t", 4);
  setNamedTypeSize("pthread_attr_t", 36);
  setNamedTypeSize("pthread_mutex_t", 24);
  setNamedTypeSize("pthread_mutexattr_t", 4);
  setNamedTypeSize("pthread_cond_t", 48);
  setNamedTypeSize("pthread_barrier_t", 20);
  setNamedTypeSize("size_t", 4);
  // RCCE target types.
  setNamedTypeSize("RCCE_FLAG", 4);
  setNamedTypeSize("RCCE_COMM", 64);
}

const Type* TypeTable::builtin(TypeKind kind) const {
  const auto it = builtins_.find(kind);
  return it != builtins_.end() ? it->second : nullptr;
}

const Type* TypeTable::pointerTo(const Type* pointee) {
  const auto it = pointer_cache_.find(pointee);
  if (it != pointer_cache_.end()) return it->second;
  storage_.push_back(std::make_unique<Type>(TypeKind::Pointer, pointee, 0, ""));
  const Type* result = storage_.back().get();
  pointer_cache_[pointee] = result;
  return result;
}

const Type* TypeTable::arrayOf(const Type* element, std::size_t length) {
  // Arrays are not interned (length differs per declaration); ownership is
  // still centralized here.
  storage_.push_back(std::make_unique<Type>(TypeKind::Array, element, length, ""));
  return storage_.back().get();
}

const Type* TypeTable::named(const std::string& name) {
  const auto it = named_cache_.find(name);
  if (it != named_cache_.end()) return it->second;
  storage_.push_back(std::make_unique<Type>(TypeKind::Named, nullptr, 0, name));
  const Type* result = storage_.back().get();
  named_cache_[name] = result;
  return result;
}

std::size_t TypeTable::sizeOf(const Type* type) const {
  if (type == nullptr) return 0;
  switch (type->kind()) {
    case TypeKind::Void: return 0;
    case TypeKind::Char:
    case TypeKind::UnsignedChar: return 1;
    case TypeKind::Short:
    case TypeKind::UnsignedShort: return 2;
    case TypeKind::Int:
    case TypeKind::UnsignedInt:
    case TypeKind::Long:
    case TypeKind::UnsignedLong:
    case TypeKind::Float: return 4;  // IA-32: long is 4 bytes
    case TypeKind::Double: return 8;
    case TypeKind::Pointer: return 4;  // IA-32 pointers
    case TypeKind::Array: return type->arrayLength() * sizeOf(type->element());
    case TypeKind::Named: {
      const auto it = named_sizes_.find(type->name());
      return it != named_sizes_.end() ? it->second : 4;
    }
  }
  return 0;
}

void TypeTable::setNamedTypeSize(const std::string& name, std::size_t bytes) {
  named_sizes_[name] = bytes;
}

}  // namespace hsm::ast

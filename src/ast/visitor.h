// Recursive AST walking utilities.
//
// `RecursiveVisitor` visits every node depth-first; subclasses override the
// hooks they care about. Expression hooks receive an AccessContext so that
// analyses can distinguish reads from writes (needed for the paper's
// Table 4.1 read/write counts).
#pragma once

#include "ast/ast.h"

namespace hsm::ast {

/// How an expression's value is being used at a visit site.
enum class AccessContext : std::uint8_t {
  Read,       ///< rvalue use
  Write,      ///< pure store target (`x = ...`)
  ReadWrite,  ///< compound assignment / increment target (`x += ...`, `x++`)
  AddressOf,  ///< operand of unary `&` (neither read nor write by itself)
};

class RecursiveVisitor {
 public:
  virtual ~RecursiveVisitor() = default;

  void traverseUnit(TranslationUnit& unit);
  void traverseFunction(FunctionDecl& fn);
  void traverseStmt(Stmt* stmt);
  void traverseExpr(Expr* expr, AccessContext ctx = AccessContext::Read);
  void traverseVarDecl(VarDecl* var);

 protected:
  // Override points. Defaults do nothing; traversal continues regardless.
  virtual void visitVarDecl(VarDecl&) {}
  virtual void visitFunctionDecl(FunctionDecl&) {}
  virtual void visitStmt(Stmt&) {}
  virtual void visitExpr(Expr&, AccessContext) {}
  /// Called for every DeclRefExpr with its effective access context.
  virtual void visitDeclRef(DeclRefExpr&, AccessContext) {}
  /// Called for every call expression (after its children).
  virtual void visitCall(CallExpr&) {}
  /// Called around loop bodies (For/While/Do) so analyses can maintain
  /// trip-count weights or induction-variable stacks.
  virtual void enterLoopBody(Stmt&) {}
  virtual void exitLoopBody(Stmt&) {}
  /// Called around the then/else branches of an if statement, so analyses
  /// can mark facts gathered there as control-dependent ("possible").
  virtual void enterIfBranch(IfStmt&) {}
  virtual void exitIfBranch(IfStmt&) {}

  /// The function whose body is currently being traversed (null at file scope).
  [[nodiscard]] FunctionDecl* currentFunction() const { return current_function_; }
  /// Nesting depth of loops enclosing the current node within the function.
  [[nodiscard]] int loopDepth() const { return loop_depth_; }

 private:
  FunctionDecl* current_function_ = nullptr;
  int loop_depth_ = 0;
};

}  // namespace hsm::ast

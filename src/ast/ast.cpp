#include "ast/ast.h"

namespace hsm::ast {

std::string CallExpr::calleeName() const {
  if (callee_ == nullptr || callee_->kind() != ExprKind::DeclRef) return "";
  return static_cast<const DeclRefExpr*>(callee_)->name();
}

std::vector<FunctionDecl*> TranslationUnit::functions() const {
  std::vector<FunctionDecl*> out;
  for (const TopLevel& tl : top_levels_) {
    if (tl.kind == TopLevel::Kind::Function && tl.function != nullptr) {
      out.push_back(tl.function);
    }
  }
  return out;
}

std::vector<VarDecl*> TranslationUnit::globals() const {
  std::vector<VarDecl*> out;
  for (const TopLevel& tl : top_levels_) {
    if (tl.kind == TopLevel::Kind::Vars) {
      out.insert(out.end(), tl.vars.begin(), tl.vars.end());
    }
  }
  return out;
}

FunctionDecl* TranslationUnit::findFunction(const std::string& name) const {
  FunctionDecl* found = nullptr;
  for (const TopLevel& tl : top_levels_) {
    if (tl.kind != TopLevel::Kind::Function || tl.function == nullptr) continue;
    if (tl.function->name() != name) continue;
    if (tl.function->isDefinition()) return tl.function;
    if (found == nullptr) found = tl.function;
  }
  return found;
}

}  // namespace hsm::ast

// The type system for the C-subset IR.
//
// Types are immutable and interned: TypeTable owns every Type instance and
// returns stable, non-owning `const Type*` handles, so pointer equality is
// type equality. Sizes follow the IA-32 (SCC / P54C) data model the paper
// targets: 32-bit int, 32-bit pointers, 64-bit double.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace hsm::ast {

enum class TypeKind : std::uint8_t {
  Void,
  Char,
  Short,
  Int,
  Long,
  UnsignedChar,
  UnsignedShort,
  UnsignedInt,
  UnsignedLong,
  Float,
  Double,
  Pointer,
  Array,
  Named,  ///< An opaque named type, e.g. `pthread_t` or `RCCE_FLAG`.
};

class Type {
 public:
  Type(TypeKind kind, const Type* element, std::size_t array_length, std::string name)
      : kind_(kind), element_(element), array_length_(array_length), name_(std::move(name)) {}

  [[nodiscard]] TypeKind kind() const { return kind_; }
  [[nodiscard]] bool isPointer() const { return kind_ == TypeKind::Pointer; }
  [[nodiscard]] bool isArray() const { return kind_ == TypeKind::Array; }
  [[nodiscard]] bool isNamed() const { return kind_ == TypeKind::Named; }
  [[nodiscard]] bool isVoid() const { return kind_ == TypeKind::Void; }
  [[nodiscard]] bool isInteger() const {
    switch (kind_) {
      case TypeKind::Char:
      case TypeKind::Short:
      case TypeKind::Int:
      case TypeKind::Long:
      case TypeKind::UnsignedChar:
      case TypeKind::UnsignedShort:
      case TypeKind::UnsignedInt:
      case TypeKind::UnsignedLong:
        return true;
      default:
        return false;
    }
  }
  [[nodiscard]] bool isFloating() const {
    return kind_ == TypeKind::Float || kind_ == TypeKind::Double;
  }

  /// Pointee for pointers, element for arrays; nullptr otherwise.
  [[nodiscard]] const Type* element() const { return element_; }
  /// Array length in elements (0 for incomplete arrays / non-arrays).
  [[nodiscard]] std::size_t arrayLength() const { return array_length_; }
  /// Name of a Named type; empty otherwise.
  [[nodiscard]] const std::string& name() const { return name_; }

  /// C spelling of this type, e.g. "int *", "double [16]", "pthread_t".
  [[nodiscard]] std::string spelling() const;

 private:
  TypeKind kind_;
  const Type* element_;
  std::size_t array_length_;
  std::string name_;
};

/// Owns and interns all Type instances for one translation unit.
class TypeTable {
 public:
  TypeTable();
  TypeTable(const TypeTable&) = delete;
  TypeTable& operator=(const TypeTable&) = delete;

  [[nodiscard]] const Type* builtin(TypeKind kind) const;
  [[nodiscard]] const Type* voidType() const { return builtin(TypeKind::Void); }
  [[nodiscard]] const Type* intType() const { return builtin(TypeKind::Int); }
  [[nodiscard]] const Type* doubleType() const { return builtin(TypeKind::Double); }
  [[nodiscard]] const Type* charType() const { return builtin(TypeKind::Char); }

  const Type* pointerTo(const Type* pointee);
  const Type* arrayOf(const Type* element, std::size_t length);
  const Type* named(const std::string& name);

  /// Size in bytes on the target (IA-32). Named types consult the size
  /// registry (which knows pthread/RCCE types); unknown named types are
  /// assumed pointer-sized — a conservative choice for partitioning.
  [[nodiscard]] std::size_t sizeOf(const Type* type) const;

  /// Register (or override) the byte size of a named type.
  void setNamedTypeSize(const std::string& name, std::size_t bytes);

 private:
  std::vector<std::unique_ptr<Type>> storage_;
  std::unordered_map<TypeKind, const Type*> builtins_;
  std::unordered_map<const Type*, const Type*> pointer_cache_;
  std::unordered_map<std::string, const Type*> named_cache_;
  std::unordered_map<std::string, std::size_t> named_sizes_;
};

}  // namespace hsm::ast

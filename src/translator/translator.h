// The top-level source-to-source translator: Pthreads C in, RCCE C out.
//
// Pipeline (paper Figure 1.1):
//   lex → parse → resolve →
//   Stage 1 (scope analysis) → Stage 2 (inter-thread) → Stage 3 (points-to) →
//   Stage 4 (partitioning)   → Stage 5 (transformation passes) → emit C.
#pragma once

#include <memory>
#include <string>

#include "analysis/variable_info.h"
#include "ast/context.h"
#include "partition/memory_plan.h"
#include "support/diagnostics.h"

namespace hsm::translator {

struct TranslatorOptions {
  /// Stage 4 memory capacities (defaults model the SCC).
  partition::HsmMemorySpec memory;
  /// Use the access-frequency-aware partitioner instead of the paper's
  /// size-ascending Algorithm 3 (ablation knob).
  bool frequency_aware_partitioning = false;
  /// Skip Stage 4/5 on-chip placement entirely: everything shared goes to
  /// off-chip shared memory (the paper's Fig. 6.1 configuration).
  bool offchip_only = false;
};

struct TranslationResult {
  bool ok = false;
  std::string output_source;       ///< translated RCCE C source
  std::string diagnostics;         ///< rendered diagnostics (if any)
  /// The AST the analysis/plan pointers refer into; kept alive so that the
  /// result is self-contained.
  std::shared_ptr<ast::ASTContext> context;
  analysis::AnalysisResult analysis;  ///< Tables 4.1 / 4.2 data
  partition::MemoryPlan plan;         ///< Stage 4 decisions
  /// The translator→runtime contract derived from the stage-2 sharing
  /// tables + the stage-4 plan: per-variable placement classes, exact
  /// per-UE MPB put/get owner sets, per-region cacheability. Consumed by
  /// `SccMachine::launch`, `rcce::ShmArray`, and `workloads::Benchmark::run`
  /// (docs/execution_plan.md).
  partition::ExecutionPlan execution_plan;

  /// Convenience: paper-style table renderings.
  [[nodiscard]] std::string variableTable() const { return analysis.formatVariableTable(); }
  [[nodiscard]] std::string sharingTable() const { return analysis.formatSharingTable(); }
};

class Translator {
 public:
  explicit Translator(TranslatorOptions options = {}) : options_(options) {}

  /// Translate a Pthreads program (as source text) to an RCCE program.
  [[nodiscard]] TranslationResult translate(const std::string& source,
                                            const std::string& name = "input.c") const;

  /// Run only the analysis stages (1–3), without transforming.
  [[nodiscard]] TranslationResult analyzeOnly(const std::string& source,
                                              const std::string& name = "input.c") const;

 private:
  TranslatorOptions options_;
};

}  // namespace hsm::translator

#include "translator/translator.h"

#include "analysis/analyzer.h"
#include "codegen/c_emitter.h"
#include "parse/parser.h"
#include "sema/resolver.h"
#include "transform/cleanup.h"
#include "transform/pass.h"
#include "transform/pthread_removal.h"
#include "transform/rcce_insertion.h"
#include "transform/shared_memory.h"
#include "transform/threads_to_processes.h"

namespace hsm::translator {
namespace {

bool runFrontend(const SourceBuffer& buffer, ast::ASTContext& context,
                 DiagnosticEngine& diags) {
  if (!parse::parseSource(buffer, context, diags)) return false;
  sema::Resolver resolver(diags);
  return resolver.resolve(context);
}

partition::MemoryPlan makePlan(const analysis::AnalysisResult& analysis,
                               const TranslatorOptions& options) {
  const std::vector<const analysis::VariableInfo*> shared = analysis.sharedVariables();
  if (options.offchip_only) {
    // Force off-chip placement by planning with zero on-chip capacity.
    partition::HsmMemorySpec spec = options.memory;
    spec.onchip_capacity_bytes = 0;
    return partition::SizeAscendingPlanner{}.plan(shared, spec);
  }
  if (options.frequency_aware_partitioning) {
    return partition::FrequencyAwarePlanner{}.plan(shared, options.memory);
  }
  return partition::SizeAscendingPlanner{}.plan(shared, options.memory);
}

}  // namespace

TranslationResult Translator::analyzeOnly(const std::string& source,
                                          const std::string& name) const {
  TranslationResult result;
  SourceBuffer buffer(name, source);
  DiagnosticEngine diags;
  result.context = std::make_shared<ast::ASTContext>();
  ast::ASTContext& context = *result.context;
  if (!runFrontend(buffer, context, diags)) {
    result.diagnostics = diags.format(buffer);
    return result;
  }
  analysis::Analyzer analyzer;
  result.analysis = analyzer.analyze(context);
  result.plan = makePlan(result.analysis, options_);
  result.execution_plan = partition::deriveExecutionPlan(result.analysis, result.plan);
  result.diagnostics = diags.format(buffer);
  result.ok = true;
  return result;
}

TranslationResult Translator::translate(const std::string& source,
                                        const std::string& name) const {
  TranslationResult result;
  SourceBuffer buffer(name, source);
  DiagnosticEngine diags;
  result.context = std::make_shared<ast::ASTContext>();
  ast::ASTContext& context = *result.context;
  if (!runFrontend(buffer, context, diags)) {
    result.diagnostics = diags.format(buffer);
    return result;
  }

  analysis::Analyzer analyzer;
  result.analysis = analyzer.analyze(context);
  result.plan = makePlan(result.analysis, options_);
  // Derive the runtime contract BEFORE stage 5: the passes rename main and
  // strip pthread bookkeeping, and the derivation reads both.
  result.execution_plan = partition::deriveExecutionPlan(result.analysis, result.plan);

  transform::PassContext pass_ctx{context, result.analysis, result.plan, diags};
  transform::Driver driver;
  // Stage 5 pass pipeline; order matters (see each pass's header).
  driver.add(std::make_unique<transform::RenameMainPass>());
  driver.add(std::make_unique<transform::AddRcceInitPass>());
  driver.add(std::make_unique<transform::SharedToShmallocPass>());
  driver.add(std::make_unique<transform::InsertCoreIdPass>());
  driver.add(std::make_unique<transform::ThreadsToProcessesPass>());
  driver.add(std::make_unique<transform::JoinToBarrierPass>());
  driver.add(std::make_unique<transform::ReplacePthreadSelfPass>());
  driver.add(std::make_unique<transform::MutexToLockPass>());
  driver.add(std::make_unique<transform::RemovePthreadApiPass>());
  driver.add(std::make_unique<transform::RemovePthreadTypesPass>());
  driver.add(std::make_unique<transform::AddRcceFinalizePass>());
  driver.add(std::make_unique<transform::ReplaceIncludesPass>());
  driver.add(std::make_unique<transform::RemoveUnusedLocalsPass>());
  driver.add(std::make_unique<transform::RemoveDemotedGlobalsPass>());
  if (!driver.runAll(pass_ctx)) {
    result.diagnostics = diags.format(buffer);
    return result;
  }

  codegen::CSourceEmitter emitter;
  result.output_source = emitter.emit(context.unit());
  result.diagnostics = diags.format(buffer);
  result.ok = !diags.hasErrors();
  return result;
}

}  // namespace hsm::translator

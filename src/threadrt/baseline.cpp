#include "threadrt/baseline.h"

namespace hsm::threadrt {
namespace {

/// Serialize an operation through the single core: the op starts when the
/// core frees up, runs for its architectural duration, and the timeline
/// advances. Returns the completion time. Templated on the completion
/// functor so the per-operation hot path stays allocation-free (a
/// std::function here costs a heap round trip on every simulated op).
template <typename CompletionAt>
sim::Tick serialize(sim::ResourceTimeline& core, sim::Tick now,
                    CompletionAt&& completion_at) {
  const sim::Tick start = now > core.nextFree() ? now : core.nextFree();
  const sim::Tick done = completion_at(start);
  core.acquire(now, done - start);
  return done;
}

}  // namespace

sim::ResumeAt ThreadContext::compute(std::uint64_t core_cycles) {
  sim::SccMachine& m = rt_.machine();
  const sim::Tick dt = m.config().coreClock().cycles(core_cycles);
  const sim::Tick done = serialize(rt_.coreTimeline(), m.engine().now(),
                                   [dt](sim::Tick start) { return start + dt; });
  return m.engine().resumeAt(done);
}

sim::ResumeAt ThreadContext::computeOps(std::uint64_t count, sim::OpClass cls) {
  return compute(count * sim::opCycles(rt_.machine().config(), cls));
}

sim::ResumeAt ThreadContext::memRead(std::uint64_t addr, void* out, std::size_t bytes) {
  sim::SccMachine& m = rt_.machine();
  // Threadrt's process memory is one shared address space across the
  // logical threads; the sync edges come free through the machine's
  // TasLock/SyncBarrier, which threadrt reuses.
  m.noteDrfPriv(addr, bytes, /*write=*/false);
  const sim::Tick done = serialize(
      rt_.coreTimeline(), m.engine().now(), [&](sim::Tick start) {
        return m.privAccessCompletion(0, start, addr, bytes, false, out, nullptr);
      });
  return m.engine().resumeAt(done);
}

sim::ResumeAt ThreadContext::memWrite(std::uint64_t addr, const void* src,
                                      std::size_t bytes) {
  sim::SccMachine& m = rt_.machine();
  m.noteDrfPriv(addr, bytes, /*write=*/true);
  const sim::Tick done = serialize(
      rt_.coreTimeline(), m.engine().now(), [&](sim::Tick start) {
        return m.privAccessCompletion(0, start, addr, bytes, true, nullptr, src);
      });
  return m.engine().resumeAt(done);
}

sim::TasLock::Awaiter ThreadContext::lockAcquire(int lock_id) {
  return rt_.machine().lock(lock_id).acquire();
}

bool ThreadContext::ReleaseAwaiter::await_ready() {
  rt.machine().lock(lock_id).release();
  return true;
}

sim::SyncBarrier::Awaiter ThreadContext::barrier() {
  return rt_.machine().barrier().arrive();
}

std::uint8_t* ThreadContext::hostMem(std::uint64_t addr) {
  return rt_.machine().privData(0, addr);
}

SingleCoreRuntime::SingleCoreRuntime(sim::SccConfig config)
    : machine_(config) {}

void SingleCoreRuntime::launch(int num_threads, const ThreadProgram& program) {
  num_threads_ = num_threads;
  machine_.setupBarrier(num_threads);
  // Every logical thread executes on core 0, so core 0's memory controller
  // is the only resource timeline it can ever touch (threadrt never uses
  // the MPB) — register that reach so the threads don't pin any other
  // resource's coalescing horizon to the global event queue. Mutex-grant
  // and barrier-wake order at equal Ticks follows the engine's
  // (time, task_id) contract, i.e. ascending tid, independent of how the
  // wait queue was built.
  const std::uint32_t core0_mc = machine_.mesh().controllerOfCore(0);
  std::vector<std::size_t> task_ids;
  task_ids.reserve(static_cast<std::size_t>(num_threads));
  for (int tid = 0; tid < num_threads; ++tid) {
    contexts_.push_back(std::make_unique<ThreadContext>(*this, tid, num_threads));
    task_ids.push_back(machine_.engine().spawn(program(*contexts_.back()), 0, core0_mc));
    // Race detection: threads spawn from untimed host context, so siblings
    // start mutually concurrent — pthread_create's visibility guarantee.
    if (machine_.drfEnabled()) machine_.drfChecker().registerTask(task_ids.back(), tid);
  }
  // Threads are the barrier's only potential wakers: lets blocked waiters
  // keep sync-aware horizons narrow instead of forcing the global fallback.
  machine_.barrier().setParticipantTasks(std::move(task_ids));
}

sim::Tick SingleCoreRuntime::run() {
  machine_.engine().run();
  sim::Tick makespan = machine_.engine().makespan();
  // Context-switch overhead: with more than one runnable thread the
  // scheduler switches once per quantum.
  if (num_threads_ > 1) {
    const sim::SccConfig& cfg = machine_.config();
    const sim::Tick quantum = cfg.coreClock().cycles(cfg.scheduler_quantum_core_cycles);
    const sim::Tick switch_cost =
        cfg.coreClock().cycles(cfg.context_switch_core_cycles);
    const sim::Tick switches = quantum > 0 ? makespan / quantum : 0;
    makespan += switches * switch_cost;
  }
  return makespan;
}

}  // namespace hsm::threadrt

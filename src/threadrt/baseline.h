// The evaluation baseline: a multi-threaded Pthreads program running on a
// single SCC core (paper §6: "each Pthread application is run on one core
// of the SCC ... 32 threads compete for processor time").
//
// Model: N logical threads share core 0. Every operation's duration is
// computed with the same architectural cost model as CoreContext (core 0's
// caches, core 0's memory controller) and then serialized through the core's
// ResourceTimeline — the makespan is the sum of all thread work plus
// queueing, exactly what time-slicing N compute-bound threads on one core
// yields. Context-switch overhead is added per expired scheduler quantum.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/machine.h"

namespace hsm::threadrt {

class SingleCoreRuntime;

/// Per-logical-thread view. API mirrors sim::CoreContext so benchmark
/// kernels can be written once against either context type.
class ThreadContext {
 public:
  ThreadContext(SingleCoreRuntime& rt, int tid, int num_threads)
      : rt_(rt), tid_(tid), num_threads_(num_threads) {}

  [[nodiscard]] int tid() const { return tid_; }
  [[nodiscard]] int numThreads() const { return num_threads_; }

  [[nodiscard]] sim::ResumeAt compute(std::uint64_t core_cycles);
  [[nodiscard]] sim::ResumeAt computeOps(std::uint64_t count, sim::OpClass cls);
  /// Process memory (the threads' shared address space): cacheable,
  /// core 0's hierarchy.
  [[nodiscard]] sim::ResumeAt memRead(std::uint64_t addr, void* out, std::size_t bytes);
  [[nodiscard]] sim::ResumeAt memWrite(std::uint64_t addr, const void* src,
                                       std::size_t bytes);
  /// A pthread mutex on a single core: uncontended fast path cost.
  [[nodiscard]] sim::TasLock::Awaiter lockAcquire(int lock_id);
  /// Awaitable for call-site symmetry with CoreContext::lockRelease (which
  /// became awaitable for the swcache release-point flush) so kernels stay
  /// writable once against either context. Process memory is cacheable and
  /// hardware-coherent on one core, so no reconciliation happens here: the
  /// release runs in await_ready and the awaiter never suspends — no
  /// coroutine frame, same cost as the old plain call.
  struct [[nodiscard]] ReleaseAwaiter {
    SingleCoreRuntime& rt;
    int lock_id;
    [[nodiscard]] bool await_ready();
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };
  [[nodiscard]] ReleaseAwaiter lockRelease(int lock_id) {
    return ReleaseAwaiter{rt_, lock_id};
  }
  /// pthread_barrier_wait across the logical threads.
  [[nodiscard]] sim::SyncBarrier::Awaiter barrier();

  /// Untimed view of the process address space (setup/verification).
  [[nodiscard]] std::uint8_t* hostMem(std::uint64_t addr);

 private:
  SingleCoreRuntime& rt_;
  int tid_;
  int num_threads_;
};

class SingleCoreRuntime {
 public:
  explicit SingleCoreRuntime(sim::SccConfig config = {});

  using ThreadProgram = std::function<sim::SimTask(ThreadContext&)>;
  /// Spawn `num_threads` logical threads running `program` on core 0.
  void launch(int num_threads, const ThreadProgram& program);

  /// Run to completion. Returns makespan *including* context-switch
  /// overhead (one switch per expired quantum with >1 runnable thread).
  sim::Tick run();

  [[nodiscard]] sim::SccMachine& machine() { return machine_; }
  [[nodiscard]] sim::ResourceTimeline& coreTimeline() { return core_; }
  [[nodiscard]] int numThreads() const { return num_threads_; }

 private:
  sim::SccMachine machine_;
  sim::ResourceTimeline core_;
  std::vector<std::unique_ptr<ThreadContext>> contexts_;
  int num_threads_ = 0;
};

}  // namespace hsm::threadrt

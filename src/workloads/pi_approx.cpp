// Pi Approximation (paper Algorithm 12): numeric integration of
// 4/(1+x^2) over [0,1). Compute-bound with one shared accumulator —
// the paper's best case (~32x on 32 cores, Fig. 6.1; near-linear core
// scaling, Fig. 6.3).
#include <cmath>
#include <cstring>

#include "rcce/rcce.h"
#include "sim/machine.h"
#include "threadrt/baseline.h"
#include "workloads/benchmark.h"

namespace hsm::workloads {
namespace {

constexpr std::size_t kChunk = 4096;
constexpr int kSumLock = 0;

struct PiParams {
  std::size_t steps = 1 << 20;
};

double partialSum(const PiParams& p, const Slice& s) {
  const double step = 1.0 / static_cast<double>(p.steps);
  double sum = 0.0;
  for (std::size_t i = s.first; i < s.last; ++i) {
    const double x = (static_cast<double>(i) + 0.5) * step;
    sum += 4.0 / (1.0 + x * x);
  }
  return sum;
}

sim::SimTask piThread(threadrt::ThreadContext& ctx, PiParams p,
                      std::uint64_t sum_addr) {
  const Slice s = blockSlice(p.steps, ctx.numThreads(), ctx.tid());
  double sum = 0.0;
  const double step = 1.0 / static_cast<double>(p.steps);
  for (std::size_t i = s.first; i < s.last; i += kChunk) {
    const std::size_t c = std::min(kChunk, s.last - i);
    sum += partialSum(p, Slice{i, i + c});
    co_await ctx.computeOps(c, sim::OpClass::FpDiv);
    co_await ctx.computeOps(3 * c, sim::OpClass::FpAdd);
    co_await ctx.computeOps(2 * c, sim::OpClass::FpMul);
  }
  // Accumulate into the shared sum under the process mutex.
  co_await ctx.lockAcquire(kSumLock);
  double global = 0.0;
  co_await ctx.memRead(sum_addr, &global, sizeof(double));
  global += sum * step;
  co_await ctx.memWrite(sum_addr, &global, sizeof(double));
  co_await ctx.lockRelease(kSumLock);
}

sim::SimTask piRcce(sim::CoreContext& ctx, PiParams p, rcce::ShmArray<double> acc,
                    rcce::MpbArray<double> mpb_acc, bool use_mpb) {
  const Slice s = blockSlice(p.steps, ctx.numUes(), ctx.ue());
  double sum = 0.0;
  const double step = 1.0 / static_cast<double>(p.steps);
  for (std::size_t i = s.first; i < s.last; i += kChunk) {
    const std::size_t c = std::min(kChunk, s.last - i);
    sum += partialSum(p, Slice{i, i + c});
    co_await ctx.computeOps(c, sim::OpClass::FpDiv);
    co_await ctx.computeOps(3 * c, sim::OpClass::FpAdd);
    co_await ctx.computeOps(2 * c, sim::OpClass::FpMul);
  }
  // The translated program accumulates into explicitly shared memory under
  // a test-and-set lock (the pthread mutex after MutexToLockPass).
  co_await ctx.lockAcquire(kSumLock);
  double global = 0.0;
  if (use_mpb) {
    co_await mpb_acc.read(ctx, 0, 0, &global);
    global += sum * step;
    co_await mpb_acc.write(ctx, 0, 0, global);
  } else {
    co_await acc.read(ctx, 0, &global);
    global += sum * step;
    co_await acc.write(ctx, 0, global);
  }
  co_await ctx.lockRelease(kSumLock);
  co_await ctx.barrier();
}

class PiApprox final : public Benchmark {
 public:
  explicit PiApprox(double scale) {
    params_.steps = static_cast<std::size_t>(static_cast<double>(params_.steps) * scale);
    if (params_.steps < 1024) params_.steps = 1024;
  }

  [[nodiscard]] std::string name() const override { return "PiApprox"; }

  // (No repeated default for plan: defaults on virtuals bind to the
  // static type — Benchmark::run's declaration owns it.)
  [[nodiscard]] RunResult run(Mode mode, int units, const sim::SccConfig& config,
                              const partition::ExecutionPlan* plan)
      const override {
    RunResult result;
    result.benchmark = name();
    result.mode = mode;
    result.units = units;
    const PiParams p = params_;

    double computed = 0.0;
    if (mode == Mode::PthreadSingleCore) {
      threadrt::SingleCoreRuntime rt(config);
      const std::uint64_t sum_addr = 0;
      std::memset(rt.machine().privData(0, sum_addr), 0, sizeof(double));
      rt.launch(units, [&](threadrt::ThreadContext& ctx) {
        return piThread(ctx, p, sum_addr);
      });
      result.makespan = rt.run();
      std::memcpy(&computed, rt.machine().privData(0, sum_addr), sizeof(double));
    } else {
      sim::SccMachine machine(config);
      rcce::RcceEnv env(machine);
      // "gsum" is the source accumulator: on-chip placement realizes it as
      // the root-funnel slot in UE 0's MPB slice (the legacy RcceMpb shape).
      const bool use_mpb = partition::isOnChip(resolvePlacement(
          plan, "gsum", mode, partition::PlacementClass::kOnChipResident));
      rcce::ShmArray<double> acc = makeShmArray<double>(
          env, 1, plan, "gsum", mode, partition::PlacementClass::kOnChipResident);
      rcce::MpbArray<double> mpb_acc(env, units, 1);
      *acc.hostData() = 0.0;
      *mpb_acc.hostData(0) = 0.0;
      machine.launch(sim::LaunchSpec(units, [&](sim::CoreContext& ctx) {
        return piRcce(ctx, p, acc, mpb_acc, use_mpb);
      }).withPlan(plan));
      result.makespan = machine.run();
      recordMachineRobustness(result, machine);
      result.plan_regions_unrealized = countUnrealizedRegions(plan, {"gsum"});
      computed = use_mpb ? *mpb_acc.hostData(0) : *acc.hostData();
    }

    result.verified = std::abs(computed - M_PI) < 1e-5;
    deriveDetail(result, "pi=" + std::to_string(computed));
    return result;
  }

 private:
  PiParams params_;
};

}  // namespace

std::unique_ptr<Benchmark> makePiApprox(double scale) {
  return std::make_unique<PiApprox>(scale);
}

}  // namespace hsm::workloads

// LU Decomposition (paper §5.2): in-place Doolittle factorization without
// pivoting, rows distributed round-robin, a barrier per elimination step.
// The matrix exceeds a core's 8 KB MPB slice, so the MPB configuration can
// only stage the pivot row — the paper's "very slight performance
// improvement" case in Fig. 6.2.
#include <cmath>
#include <cstring>
#include <vector>

#include "rcce/rcce.h"
#include "sim/machine.h"
#include "threadrt/baseline.h"
#include "workloads/benchmark.h"

namespace hsm::workloads {
namespace {

struct LuParams {
  std::size_t n = 96;  // matrix dimension
};

double origElem(std::size_t i, std::size_t j, std::size_t n) {
  if (i == j) return 2.0 * static_cast<double>(n);
  const double d = i > j ? static_cast<double>(i - j) : static_cast<double>(j - i);
  return 1.0 / (1.0 + d);
}

void initMatrix(double* m, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m[i * n + j] = origElem(i, j, n);
  }
}

/// Reconstruct A = L*U from the in-place factors and compare to the
/// original matrix.
bool verifyLu(const double* m, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // A[i][j] = sum over k<=min(i,j) of L[i][k]*U[k][j], with L[i][i]=1.
      const std::size_t bound = std::min(i, j);
      double sum = 0.0;
      for (std::size_t k = 0; k <= bound; ++k) {
        const double l = (k == i) ? 1.0 : m[i * n + k];
        sum += l * m[k * n + j];
      }
      if (std::abs(sum - origElem(i, j, n)) > 1e-6) return false;
    }
  }
  return true;
}

/// The elimination work one unit performs at step k: returns FP op count.
std::uint64_t eliminationOps(std::size_t n, std::size_t k) {
  return 1 + 2 * (n - k - 1);  // one divide + mul/sub per trailing column
}

sim::SimTask luThread(threadrt::ThreadContext& ctx, LuParams p, std::uint64_t m0) {
  const std::size_t n = p.n;
  const int P = ctx.numThreads();
  const int me = ctx.tid();
  std::vector<double> row_k(n), row_i(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t len = n - k;
    co_await ctx.memRead(m0 + (k * n + k) * 8, row_k.data(), len * 8);
    for (std::size_t i = k + 1; i < n; ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(P)) != me) continue;
      co_await ctx.memRead(m0 + (i * n + k) * 8, row_i.data(), len * 8);
      const double factor = row_i[0] / row_k[0];
      row_i[0] = factor;
      for (std::size_t j = 1; j < len; ++j) row_i[j] -= factor * row_k[j];
      co_await ctx.computeOps(1, sim::OpClass::FpDiv);
      co_await ctx.computeOps(2 * (len - 1), sim::OpClass::FpAdd);
      co_await ctx.memWrite(m0 + (i * n + k) * 8, row_i.data(), len * 8);
    }
    // The pthread program synchronizes workers between elimination steps
    // (pthread_barrier_wait); required for correctness on any schedule.
    co_await ctx.barrier();
  }
}

sim::SimTask luRcce(sim::CoreContext& ctx, LuParams p, rcce::ShmArray<double> m,
                    rcce::MpbArray<double> pivot_stage, bool use_mpb) {
  const std::size_t n = p.n;
  const int P = ctx.numUes();
  const int me = ctx.ue();
  std::vector<double> row_k(n), row_i(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t len = n - k;
    const int pivot_owner = static_cast<int>(k % static_cast<std::size_t>(P));
    if (use_mpb) {
      // The pivot row is staged in its owner's MPB once; everyone else
      // fetches it on-chip instead of re-reading off-chip DRAM.
      if (me == pivot_owner) {
        co_await m.readBulk(ctx, k * n + k, len, row_k.data());
        co_await pivot_stage.writeBlock(ctx, me, 0, len, row_k.data());
      }
      co_await ctx.barrier();
      if (me != pivot_owner) {
        co_await pivot_stage.readBlock(ctx, pivot_owner, 0, len, row_k.data());
      }
    } else {
      co_await m.readBlock(ctx, k * n + k, len, row_k.data());
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(P)) != me) continue;
      // The working rows exceed any MPB slice, so row updates stay in
      // off-chip shared memory in both configurations — only the pivot row
      // staging differs (hence the paper's "very slight" MPB gain for LU).
      co_await m.readBlock(ctx, i * n + k, len, row_i.data());
      const double factor = row_i[0] / row_k[0];
      row_i[0] = factor;
      for (std::size_t j = 1; j < len; ++j) row_i[j] -= factor * row_k[j];
      co_await ctx.computeOps(1, sim::OpClass::FpDiv);
      co_await ctx.computeOps(2 * (len - 1), sim::OpClass::FpAdd);
      co_await m.writeBlock(ctx, i * n + k, len, row_i.data());
    }
    co_await ctx.barrier();
  }
}

class LuDecomposition final : public Benchmark {
 public:
  explicit LuDecomposition(double scale) {
    params_.n = static_cast<std::size_t>(static_cast<double>(params_.n) * std::sqrt(scale));
    if (params_.n < 16) params_.n = 16;
  }

  [[nodiscard]] std::string name() const override { return "LU"; }

  // (No repeated default for plan: defaults on virtuals bind to the
  // static type — Benchmark::run's declaration owns it.)
  [[nodiscard]] RunResult run(Mode mode, int units, const sim::SccConfig& config,
                              const partition::ExecutionPlan* plan)
      const override {
    RunResult result;
    result.benchmark = name();
    result.mode = mode;
    result.units = units;
    const LuParams p = params_;

    bool verified = false;
    if (mode == Mode::PthreadSingleCore) {
      threadrt::SingleCoreRuntime rt(config);
      const std::uint64_t m0 = 0;
      rt.machine().reservePrivate(0, p.n * p.n * 8);
      auto* m_host = reinterpret_cast<double*>(rt.machine().privData(0, m0));
      initMatrix(m_host, p.n);
      rt.launch(units, [&](threadrt::ThreadContext& ctx) {
        return luThread(ctx, p, m0);
      });
      result.makespan = rt.run();
      verified = verifyLu(reinterpret_cast<double*>(rt.machine().privData(0, m0)), p.n);
    } else {
      sim::SccMachine machine(config);
      rcce::RcceEnv env(machine);
      using partition::PlacementClass;
      // "m" is the thread-written matrix with cross-thread pivot reuse: the
      // translator stages it via rotating broadcast (each step's pivot owner
      // publishes from its own slice, everyone fetches).
      const bool use_mpb = partition::isOnChip(
          resolvePlacement(plan, "m", mode, PlacementClass::kOnChipStaged));
      rcce::ShmArray<double> m = makeShmArray<double>(
          env, p.n * p.n, plan, "m", mode, PlacementClass::kOnChipStaged);
      rcce::MpbArray<double> pivot_stage(env, units, p.n);
      initMatrix(m.hostData(), p.n);
      machine.launch(sim::LaunchSpec(units, [&](sim::CoreContext& ctx) {
        return luRcce(ctx, p, m, pivot_stage, use_mpb);
      }).withPlan(plan));
      result.makespan = machine.run();
      recordMachineRobustness(result, machine);
      result.plan_regions_unrealized = countUnrealizedRegions(plan, {"m"});
      verified = verifyLu(m.hostData(), p.n);
    }

    result.verified = verified;
    deriveDetail(result, verified ? "lu=ok" : "lu=MISMATCH");
    return result;
  }

 private:
  LuParams params_;
};

}  // namespace

std::unique_ptr<Benchmark> makeLuDecomposition(double scale) {
  return std::make_unique<LuDecomposition>(scale);
}

}  // namespace hsm::workloads

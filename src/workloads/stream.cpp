// Stream (paper Algorithms 13–16): the Copy, Scale, Add and Triad kernels
// over three double arrays. The all-memory benchmark: off-chip placement
// pays a word-granular uncached transaction per element, while the MPB
// configuration moves data with bulk row-buffer-friendly copies staged
// through the on-chip buffer — the largest Fig. 6.2 winner.
#include <cmath>
#include <cstring>
#include <vector>

#include "rcce/rcce.h"
#include "sim/machine.h"
#include "threadrt/baseline.h"
#include "workloads/benchmark.h"

namespace hsm::workloads {
namespace {

constexpr std::size_t kChunk = 256;  // elements staged per transfer
constexpr double kScalar = 3.0;

struct StreamParams {
  std::size_t n = 1 << 16;  // doubles per array
};

void referenceStream(std::vector<double>& a, std::vector<double>& b,
                     std::vector<double>& c) {
  const std::size_t n = a.size();
  for (std::size_t j = 0; j < n; ++j) c[j] = a[j];            // copy
  for (std::size_t j = 0; j < n; ++j) b[j] = kScalar * c[j];  // scale
  for (std::size_t j = 0; j < n; ++j) c[j] = a[j] + b[j];     // add
  for (std::size_t j = 0; j < n; ++j) a[j] = b[j] + kScalar * c[j];  // triad
}

void initArrays(double* a, double* b, double* c, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    a[j] = 1.0 + static_cast<double>(j % 64);
    b[j] = 2.0;
    c[j] = 0.0;
  }
}

bool checkArrays(const double* a, const double* b, const double* c, std::size_t n) {
  std::vector<double> ra(n), rb(n), rc(n);
  for (std::size_t j = 0; j < n; ++j) {
    ra[j] = 1.0 + static_cast<double>(j % 64);
    rb[j] = 2.0;
    rc[j] = 0.0;
  }
  referenceStream(ra, rb, rc);
  for (std::size_t j = 0; j < n; ++j) {
    if (std::abs(a[j] - ra[j]) > 1e-9 || std::abs(b[j] - rb[j]) > 1e-9 ||
        std::abs(c[j] - rc[j]) > 1e-9) {
      return false;
    }
  }
  return true;
}

// --- baseline: process memory, cacheable, one core -------------------------

sim::SimTask streamThread(threadrt::ThreadContext& ctx, StreamParams p,
                          std::uint64_t a0, std::uint64_t b0, std::uint64_t c0) {
  const Slice s = blockSlice(p.n, ctx.numThreads(), ctx.tid());
  std::vector<double> in1(kChunk), in2(kChunk), out(kChunk);
  // Four kernels, barrier-free in the original pthread program (each thread
  // owns a disjoint slice; threads join between kernels via pthread_join in
  // the source — the single-core baseline serializes anyway).
  for (int kernel = 0; kernel < 4; ++kernel) {
    for (std::size_t j = s.first; j < s.last; j += kChunk) {
      const std::size_t c = std::min(kChunk, s.last - j);
      switch (kernel) {
        case 0:  // c[j] = a[j]
          co_await ctx.memRead(a0 + j * 8, in1.data(), c * 8);
          co_await ctx.memWrite(c0 + j * 8, in1.data(), c * 8);
          break;
        case 1:  // b[j] = 3*c[j]
          co_await ctx.memRead(c0 + j * 8, in1.data(), c * 8);
          for (std::size_t k = 0; k < c; ++k) out[k] = kScalar * in1[k];
          co_await ctx.computeOps(c, sim::OpClass::FpMul);
          co_await ctx.memWrite(b0 + j * 8, out.data(), c * 8);
          break;
        case 2:  // c[j] = a[j] + b[j]
          co_await ctx.memRead(a0 + j * 8, in1.data(), c * 8);
          co_await ctx.memRead(b0 + j * 8, in2.data(), c * 8);
          for (std::size_t k = 0; k < c; ++k) out[k] = in1[k] + in2[k];
          co_await ctx.computeOps(c, sim::OpClass::FpAdd);
          co_await ctx.memWrite(c0 + j * 8, out.data(), c * 8);
          break;
        case 3:  // a[j] = b[j] + 3*c[j]
          co_await ctx.memRead(b0 + j * 8, in1.data(), c * 8);
          co_await ctx.memRead(c0 + j * 8, in2.data(), c * 8);
          for (std::size_t k = 0; k < c; ++k) out[k] = in1[k] + kScalar * in2[k];
          co_await ctx.computeOps(c, sim::OpClass::FpAdd);
          co_await ctx.computeOps(c, sim::OpClass::FpMul);
          co_await ctx.memWrite(a0 + j * 8, out.data(), c * 8);
          break;
      }
    }
  }
}

// --- RCCE: shared arrays, off-chip words or MPB-staged bulk ----------------

sim::SimTask streamRcce(sim::CoreContext& ctx, StreamParams p,
                        rcce::ShmArray<double> a, rcce::ShmArray<double> b,
                        rcce::ShmArray<double> c, rcce::MpbArray<double> stage,
                        bool use_mpb) {
  const Slice s = blockSlice(p.n, ctx.numUes(), ctx.ue());
  std::vector<double> in1(kChunk), in2(kChunk), out(kChunk);
  const int me = ctx.ue();
  // The bulk copy is a DMA into this core's MPB slice: its DRAM-side cost
  // is the bulk op; depositing into the slice's backing store is untimed.
  auto deposit = [&](const double* data, std::size_t count) {
    std::memcpy(stage.hostData(me), data, count * sizeof(double));
  };

  for (int kernel = 0; kernel < 4; ++kernel) {
    for (std::size_t j = s.first; j < s.last; j += kChunk) {
      const std::size_t cnt = std::min(kChunk, s.last - j);
      if (use_mpb) {
        // Bulk copies land blocks in this core's MPB slice (DMA-style);
        // the core then touches them on-chip.
        switch (kernel) {
          case 0:
            co_await a.readBulk(ctx, j, cnt, in1.data());
            deposit(in1.data(), cnt);
            co_await stage.readBlock(ctx, me, 0, cnt, in1.data());
            co_await c.writeBulk(ctx, j, cnt, in1.data());
            break;
          case 1:
            co_await c.readBulk(ctx, j, cnt, in1.data());
            deposit(in1.data(), cnt);
            co_await stage.readBlock(ctx, me, 0, cnt, in1.data());
            for (std::size_t k = 0; k < cnt; ++k) out[k] = kScalar * in1[k];
            co_await ctx.computeOps(cnt, sim::OpClass::FpMul);
            co_await b.writeBulk(ctx, j, cnt, out.data());
            break;
          case 2:
            co_await a.readBulk(ctx, j, cnt, in1.data());
            co_await b.readBulk(ctx, j, cnt, in2.data());
            for (std::size_t k = 0; k < cnt; ++k) out[k] = in1[k] + in2[k];
            co_await ctx.computeOps(cnt, sim::OpClass::FpAdd);
            co_await c.writeBulk(ctx, j, cnt, out.data());
            break;
          case 3:
            co_await b.readBulk(ctx, j, cnt, in1.data());
            co_await c.readBulk(ctx, j, cnt, in2.data());
            for (std::size_t k = 0; k < cnt; ++k) out[k] = in1[k] + kScalar * in2[k];
            co_await ctx.computeOps(cnt, sim::OpClass::FpAdd);
            co_await ctx.computeOps(cnt, sim::OpClass::FpMul);
            co_await a.writeBulk(ctx, j, cnt, out.data());
            break;
        }
      } else {
        switch (kernel) {
          case 0:
            co_await a.readBlock(ctx, j, cnt, in1.data());
            co_await c.writeBlock(ctx, j, cnt, in1.data());
            break;
          case 1:
            co_await c.readBlock(ctx, j, cnt, in1.data());
            for (std::size_t k = 0; k < cnt; ++k) out[k] = kScalar * in1[k];
            co_await ctx.computeOps(cnt, sim::OpClass::FpMul);
            co_await b.writeBlock(ctx, j, cnt, out.data());
            break;
          case 2:
            co_await a.readBlock(ctx, j, cnt, in1.data());
            co_await b.readBlock(ctx, j, cnt, in2.data());
            for (std::size_t k = 0; k < cnt; ++k) out[k] = in1[k] + in2[k];
            co_await ctx.computeOps(cnt, sim::OpClass::FpAdd);
            co_await c.writeBlock(ctx, j, cnt, out.data());
            break;
          case 3:
            co_await b.readBlock(ctx, j, cnt, in1.data());
            co_await c.readBlock(ctx, j, cnt, in2.data());
            for (std::size_t k = 0; k < cnt; ++k) out[k] = in1[k] + kScalar * in2[k];
            co_await ctx.computeOps(cnt, sim::OpClass::FpAdd);
            co_await ctx.computeOps(cnt, sim::OpClass::FpMul);
            co_await a.writeBlock(ctx, j, cnt, out.data());
            break;
        }
      }
    }
    // Kernels have cross-slice dependencies only at the kernel boundary;
    // the translated program synchronizes with a barrier.
    co_await ctx.barrier();
  }
}

class Stream final : public Benchmark {
 public:
  explicit Stream(double scale) {
    params_.n = static_cast<std::size_t>(static_cast<double>(params_.n) * scale);
    if (params_.n < 1024) params_.n = 1024;
  }

  [[nodiscard]] std::string name() const override { return "Stream"; }

  // (No repeated default for plan: defaults on virtuals bind to the
  // static type — Benchmark::run's declaration owns it.)
  [[nodiscard]] RunResult run(Mode mode, int units, const sim::SccConfig& config,
                              const partition::ExecutionPlan* plan)
      const override {
    RunResult result;
    result.benchmark = name();
    result.mode = mode;
    result.units = units;
    const StreamParams p = params_;

    bool verified = false;
    if (mode == Mode::PthreadSingleCore) {
      threadrt::SingleCoreRuntime rt(config);
      const std::uint64_t a0 = 0;
      const std::uint64_t b0 = a0 + p.n * 8;
      const std::uint64_t c0 = b0 + p.n * 8;
      rt.machine().reservePrivate(0, c0 + p.n * 8);
      initArrays(reinterpret_cast<double*>(rt.machine().privData(0, a0)),
                 reinterpret_cast<double*>(rt.machine().privData(0, b0)),
                 reinterpret_cast<double*>(rt.machine().privData(0, c0)), p.n);
      rt.launch(units, [&](threadrt::ThreadContext& ctx) {
        return streamThread(ctx, p, a0, b0, c0);
      });
      result.makespan = rt.run();
      verified = checkArrays(reinterpret_cast<double*>(rt.machine().privData(0, a0)),
                             reinterpret_cast<double*>(rt.machine().privData(0, b0)),
                             reinterpret_cast<double*>(rt.machine().privData(0, c0)),
                             p.n);
    } else {
      sim::SccMachine machine(config);
      rcce::RcceEnv env(machine);
      using partition::PlacementClass;
      // The three source arrays are thread-written streamed slices: the
      // translator stages them through each UE's own slice (self-stage).
      const bool use_mpb = partition::isOnChip(
          resolvePlacement(plan, "a", mode, PlacementClass::kOnChipStaged));
      rcce::ShmArray<double> a =
          makeShmArray<double>(env, p.n, plan, "a", mode, PlacementClass::kOnChipStaged);
      rcce::ShmArray<double> b =
          makeShmArray<double>(env, p.n, plan, "b", mode, PlacementClass::kOnChipStaged);
      rcce::ShmArray<double> c =
          makeShmArray<double>(env, p.n, plan, "c", mode, PlacementClass::kOnChipStaged);
      rcce::MpbArray<double> stage(env, units, kChunk);
      initArrays(a.hostData(), b.hostData(), c.hostData(), p.n);
      machine.launch(sim::LaunchSpec(units, [&](sim::CoreContext& ctx) {
        return streamRcce(ctx, p, a, b, c, stage, use_mpb);
      }).withPlan(plan));
      result.makespan = machine.run();
      recordMachineRobustness(result, machine);
      result.plan_regions_unrealized =
          countUnrealizedRegions(plan, {"a", "b", "c"});
      verified = checkArrays(a.hostData(), b.hostData(), c.hostData(), p.n);
    }

    result.verified = verified;
    deriveDetail(result, verified ? "arrays=ok" : "arrays=MISMATCH");
    return result;
  }

 private:
  StreamParams params_;
};

}  // namespace

std::unique_ptr<Benchmark> makeStream(double scale) {
  return std::make_unique<Stream>(scale);
}

}  // namespace hsm::workloads

#include "workloads/benchmark.h"

#include <stdexcept>

namespace hsm::workloads {

const char* modeName(Mode mode) {
  switch (mode) {
    case Mode::PthreadSingleCore: return "pthread-1core";
    case Mode::RcceOffChip: return "rcce-offchip";
    case Mode::RcceMpb: return "rcce-mpb";
  }
  return "?";
}

Slice blockSlice(std::size_t n, int units, int u) {
  const std::size_t per = n / static_cast<std::size_t>(units);
  const std::size_t extra = n % static_cast<std::size_t>(units);
  const auto uu = static_cast<std::size_t>(u);
  const std::size_t first = uu * per + (uu < extra ? uu : extra);
  const std::size_t count = per + (uu < extra ? 1 : 0);
  return Slice{first, first + count};
}

std::vector<std::unique_ptr<Benchmark>> standardSuite(double scale) {
  std::vector<std::unique_ptr<Benchmark>> suite;
  suite.push_back(makePiApprox(scale));
  suite.push_back(makeSum35(scale));
  suite.push_back(makeCountPrimes(scale));
  suite.push_back(makeStream(scale));
  suite.push_back(makeDotProduct(scale));
  suite.push_back(makeLuDecomposition(scale));
  return suite;
}

}  // namespace hsm::workloads

#include "workloads/benchmark.h"

#include <cmath>
#include <stdexcept>

namespace hsm::workloads {

const char* modeName(Mode mode) {
  switch (mode) {
    case Mode::PthreadSingleCore: return "pthread-1core";
    case Mode::RcceOffChip: return "rcce-offchip";
    case Mode::RcceMpb: return "rcce-mpb";
  }
  return "?";
}

void recordMachineRobustness(RunResult& result, const sim::SccMachine& machine) {
  result.metrics = sim::obs::collectMetrics(machine);
  const auto counter = [&result](const char* name) -> std::uint64_t {
    const auto it = result.metrics.sim_counters.find(name);
    return it != result.metrics.sim_counters.end() ? it->second : 0;
  };
  result.mpb_scope_violations = counter("mpb_scope_violations");
  result.faults_injected = counter("faults_injected");
  result.faults_recovered = counter("faults_recovered");
  result.fault_retries = counter("fault_retries");
  result.faults_unrecovered = counter("faults_unrecovered");
  result.drf_races = counter("drf_races");
  result.controller_traffic = machine.controllerTraffic();
  const auto cv = result.metrics.sim_gauges.find("controller_load_cv");
  result.controller_load_cv = cv != result.metrics.sim_gauges.end() ? cv->second : 0.0;
}

void deriveDetail(RunResult& result, const std::string& value) {
  const std::string summary = result.metrics.summary();
  if (summary.empty()) {
    result.detail = value;
  } else if (value.empty()) {
    result.detail = summary;
  } else {
    result.detail = value + " | " + summary;
  }
}

partition::PlacementClass resolvePlacement(const partition::ExecutionPlan* plan,
                                           const char* name, Mode mode,
                                           partition::PlacementClass mpb_default) {
  using partition::PlacementClass;
  PlacementClass cls = mode == Mode::RcceMpb ? mpb_default
                                             : PlacementClass::kOffChipUncached;
  if (plan != nullptr) {
    if (const partition::RegionPlan* r = plan->find(name)) cls = r->placement;
  }
  if (mode == Mode::RcceOffChip && partition::isOnChip(cls)) {
    cls = PlacementClass::kOffChipUncached;  // Fig. 6.1: no on-chip placement
  }
  return cls;
}

std::uint64_t countUnrealizedRegions(const partition::ExecutionPlan* plan,
                                     std::initializer_list<const char*> known) {
  if (plan == nullptr) return 0;
  std::uint64_t unrealized = 0;
  for (const partition::RegionPlan& r : plan->regions) {
    const bool consequential =
        r.cached() || (r.onChip() && r.pattern != partition::MpbPattern::kNone) ||
        (!r.onChip() &&
         r.controller != partition::ControllerPlacement::kOwnerCompute);
    if (!consequential) continue;
    bool matched = false;
    for (const char* name : known) {
      matched = matched || r.name == name;
    }
    if (!matched) ++unrealized;
  }
  return unrealized;
}

Slice blockSlice(std::size_t n, int units, int u) {
  const std::size_t per = n / static_cast<std::size_t>(units);
  const std::size_t extra = n % static_cast<std::size_t>(units);
  const auto uu = static_cast<std::size_t>(u);
  const std::size_t first = uu * per + (uu < extra ? uu : extra);
  const std::size_t count = per + (uu < extra ? 1 : 0);
  return Slice{first, first + count};
}

std::vector<std::unique_ptr<Benchmark>> standardSuite(double scale) {
  std::vector<std::unique_ptr<Benchmark>> suite;
  suite.push_back(makePiApprox(scale));
  suite.push_back(makeSum35(scale));
  suite.push_back(makeCountPrimes(scale));
  suite.push_back(makeStream(scale));
  suite.push_back(makeDotProduct(scale));
  suite.push_back(makeLuDecomposition(scale));
  return suite;
}

}  // namespace hsm::workloads

#include "workloads/benchmark.h"

#include <cmath>
#include <stdexcept>

namespace hsm::workloads {

const char* modeName(Mode mode) {
  switch (mode) {
    case Mode::PthreadSingleCore: return "pthread-1core";
    case Mode::RcceOffChip: return "rcce-offchip";
    case Mode::RcceMpb: return "rcce-mpb";
  }
  return "?";
}

void recordMachineRobustness(RunResult& result, const sim::SccMachine& machine) {
  result.mpb_scope_violations = machine.mpbScopeViolations();
  const sim::FaultStats& f = machine.faultStats();
  result.faults_injected = f.totalInjected();
  result.faults_recovered = f.totalRecovered();
  result.fault_retries = f.retries;
  result.faults_unrecovered = f.unrecovered;
  result.controller_traffic = machine.controllerTraffic();
  double sum = 0.0;
  for (const std::uint64_t t : result.controller_traffic) {
    sum += static_cast<double>(t);
  }
  if (sum > 0.0 && !result.controller_traffic.empty()) {
    const double mean = sum / static_cast<double>(result.controller_traffic.size());
    double var = 0.0;
    for (const std::uint64_t t : result.controller_traffic) {
      const double d = static_cast<double>(t) - mean;
      var += d * d;
    }
    var /= static_cast<double>(result.controller_traffic.size());
    result.controller_load_cv = std::sqrt(var) / mean;
  }
}

partition::PlacementClass resolvePlacement(const partition::ExecutionPlan* plan,
                                           const char* name, Mode mode,
                                           partition::PlacementClass mpb_default) {
  using partition::PlacementClass;
  PlacementClass cls = mode == Mode::RcceMpb ? mpb_default
                                             : PlacementClass::kOffChipUncached;
  if (plan != nullptr) {
    if (const partition::RegionPlan* r = plan->find(name)) cls = r->placement;
  }
  if (mode == Mode::RcceOffChip && partition::isOnChip(cls)) {
    cls = PlacementClass::kOffChipUncached;  // Fig. 6.1: no on-chip placement
  }
  return cls;
}

std::uint64_t countUnrealizedRegions(const partition::ExecutionPlan* plan,
                                     std::initializer_list<const char*> known) {
  if (plan == nullptr) return 0;
  std::uint64_t unrealized = 0;
  for (const partition::RegionPlan& r : plan->regions) {
    const bool consequential =
        r.cached() || (r.onChip() && r.pattern != partition::MpbPattern::kNone) ||
        (!r.onChip() &&
         r.controller != partition::ControllerPlacement::kOwnerCompute);
    if (!consequential) continue;
    bool matched = false;
    for (const char* name : known) {
      matched = matched || r.name == name;
    }
    if (!matched) ++unrealized;
  }
  return unrealized;
}

Slice blockSlice(std::size_t n, int units, int u) {
  const std::size_t per = n / static_cast<std::size_t>(units);
  const std::size_t extra = n % static_cast<std::size_t>(units);
  const auto uu = static_cast<std::size_t>(u);
  const std::size_t first = uu * per + (uu < extra ? uu : extra);
  const std::size_t count = per + (uu < extra ? 1 : 0);
  return Slice{first, first + count};
}

std::vector<std::unique_ptr<Benchmark>> standardSuite(double scale) {
  std::vector<std::unique_ptr<Benchmark>> suite;
  suite.push_back(makePiApprox(scale));
  suite.push_back(makeSum35(scale));
  suite.push_back(makeCountPrimes(scale));
  suite.push_back(makeStream(scale));
  suite.push_back(makeDotProduct(scale));
  suite.push_back(makeLuDecomposition(scale));
  return suite;
}

}  // namespace hsm::workloads

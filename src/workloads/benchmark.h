// The paper's benchmark suite (§5.2): Count Primes, Pi Approximation,
// 3-5-Sum, Dot Product, LU Decomposition, and the Stream memory benchmark.
//
// Each benchmark runs in three modes:
//   * PthreadSingleCore — N threads multiplexed on one core (the paper's
//     evaluation baseline);
//   * RcceOffChip — N cores, shared data in uncached off-chip DRAM
//     (the Fig. 6.1 configuration);
//   * RcceMpb — N cores, shared data staged through / resident in the
//     on-chip MPB (the Fig. 6.2 configuration).
// All modes compute real results that are verified against references.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "sim/scc_config.h"
#include "sim/time.h"

namespace hsm::workloads {

enum class Mode : std::uint8_t { PthreadSingleCore, RcceOffChip, RcceMpb };

[[nodiscard]] const char* modeName(Mode mode);

struct RunResult {
  std::string benchmark;
  Mode mode = Mode::PthreadSingleCore;
  int units = 0;             ///< threads (baseline) or cores (RCCE)
  sim::Tick makespan = 0;
  bool verified = false;
  std::string detail;        ///< human-readable result summary
  /// MPB accesses outside the declared MpbScope (RCCE modes; 0 when no
  /// scope was passed). Non-zero voids the run's port-isolation guarantee.
  std::uint64_t mpb_scope_violations = 0;
};

class Benchmark {
 public:
  virtual ~Benchmark() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Execute in `mode` on `units` threads/cores. `mpb_scope` (RCCE modes)
  /// is forwarded to SccMachine::launch so callers that know the workload's
  /// MPB communication pattern — e.g. the translator's stage-4 memory plan —
  /// get tight per-port reach sets; violations are reported in the result.
  [[nodiscard]] virtual RunResult run(Mode mode, int units,
                                      const sim::SccConfig& config,
                                      const sim::SccMachine::MpbScope& mpb_scope = {})
      const = 0;
};

// Factories. `scale` multiplies the default problem size (1.0 = the sizes
// used by the bench harness; tests use smaller scales).
[[nodiscard]] std::unique_ptr<Benchmark> makeCountPrimes(double scale = 1.0);
[[nodiscard]] std::unique_ptr<Benchmark> makePiApprox(double scale = 1.0);
[[nodiscard]] std::unique_ptr<Benchmark> makeSum35(double scale = 1.0);
[[nodiscard]] std::unique_ptr<Benchmark> makeDotProduct(double scale = 1.0);
[[nodiscard]] std::unique_ptr<Benchmark> makeLuDecomposition(double scale = 1.0);
[[nodiscard]] std::unique_ptr<Benchmark> makeStream(double scale = 1.0);

/// The six benchmarks of the paper, in its reporting order.
[[nodiscard]] std::vector<std::unique_ptr<Benchmark>> standardSuite(double scale = 1.0);

/// [first, last) element range handled by unit `u` of `units` under block
/// partitioning (the paper's divide-and-conquer pattern; the source of
/// CountPrimes' load imbalance).
struct Slice {
  std::size_t first = 0;
  std::size_t last = 0;
  [[nodiscard]] std::size_t size() const { return last - first; }
};
[[nodiscard]] Slice blockSlice(std::size_t n, int units, int u);

/// Pthreads C source of each benchmark (Appendix C pseudocode realized as
/// compilable C) for feeding the source-to-source translator. Throws
/// std::out_of_range for unknown names.
[[nodiscard]] const std::string& pthreadSource(const std::string& benchmark_name);
[[nodiscard]] std::vector<std::string> pthreadSourceNames();

}  // namespace hsm::workloads

// The paper's benchmark suite (§5.2): Count Primes, Pi Approximation,
// 3-5-Sum, Dot Product, LU Decomposition, and the Stream memory benchmark.
//
// Each benchmark runs in three modes:
//   * PthreadSingleCore — N threads multiplexed on one core (the paper's
//     evaluation baseline);
//   * RcceOffChip — N cores, shared data in uncached off-chip DRAM
//     (the Fig. 6.1 configuration);
//   * RcceMpb — N cores, shared data staged through / resident in the
//     on-chip MPB (the Fig. 6.2 configuration).
// All modes compute real results that are verified against references.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "partition/execution_plan.h"
#include "rcce/rcce.h"
#include "sim/machine.h"
#include "sim/obs/metrics.h"
#include "sim/scc_config.h"
#include "sim/time.h"

namespace hsm::workloads {

enum class Mode : std::uint8_t { PthreadSingleCore, RcceOffChip, RcceMpb };

[[nodiscard]] const char* modeName(Mode mode);

struct RunResult {
  std::string benchmark;
  Mode mode = Mode::PthreadSingleCore;
  int units = 0;             ///< threads (baseline) or cores (RCCE)
  sim::Tick makespan = 0;
  bool verified = false;
  /// "<functional value> | <sim-metric summary>" (deriveDetail): the value
  /// part is routing-invariant, the summary is MetricsSnapshot::summary() —
  /// sim-domain only, so the whole line reproduces bit-for-bit per config.
  std::string detail;
  /// Full end-of-run metrics snapshot (sim::obs::collectMetrics; RCCE modes
  /// only — the pthread baseline has no SccMachine and leaves it empty).
  sim::obs::MetricsSnapshot metrics;
  /// MPB accesses outside the plan's declared owner sets (RCCE modes; 0
  /// when no plan was passed). Non-zero voids the port-isolation guarantee.
  std::uint64_t mpb_scope_violations = 0;
  /// Plan regions with runtime consequences (an on-chip MPB pattern or
  /// cached routing) whose names this workload did not recognize. Name
  /// drift between the translated source and the workload twin would
  /// otherwise silently disable the plan — resolvePlacement falls back to
  /// the legacy defaults on a failed lookup. 0 when no plan was passed.
  std::uint64_t plan_regions_unrealized = 0;
  // -- fault-tolerant run mode (config.fault armed; all zero otherwise) --
  /// Transient faults the machine injected during the run.
  std::uint64_t faults_injected = 0;
  /// Injected faults the retry/verify layer detected and repaired.
  std::uint64_t faults_recovered = 0;
  /// Transfer re-executions the recovery layer performed.
  std::uint64_t fault_retries = 0;
  /// Transfers whose retry budget was exhausted with the fault unrepaired.
  /// Non-zero voids the run's data-integrity guarantee (verified may still
  /// be false independently).
  std::uint64_t faults_unrecovered = 0;
  // -- per-controller shared-DRAM load (RCCE modes; empty/0 otherwise) --
  /// Transactions each memory controller served (SccMachine::
  /// controllerTraffic — uncached words + swcache lines + bulk lines).
  std::vector<std::uint64_t> controller_traffic;
  /// Coefficient of variation (population stddev / mean) of
  /// controller_traffic — 0 is a perfectly flat spread; a skewed workload
  /// behind an address-striped placement drives it up. 0 when no
  /// shared-DRAM traffic was simulated.
  double controller_load_cv = 0.0;
  /// Happens-before races the drf checker reported (config.drf_check runs
  /// only; 0 otherwise). Any non-zero count voids every granularity-
  /// conditional guarantee of the run (docs/race_detection.md).
  std::uint64_t drf_races = 0;
};

/// Fill `result`'s machine-robustness counters (MPB scope violations plus
/// the fault-injection/recovery stats) from a finished machine run — the
/// one call every RCCE-mode workload makes after machine.run(). Collects the
/// full metrics snapshot first (sim::obs::collectMetrics) and reads the
/// scalar fields back out of it, so RunResult and MetricsSnapshot can never
/// disagree.
void recordMachineRobustness(RunResult& result, const sim::SccMachine& machine);

/// Compose RunResult::detail from the workload's functional value string and
/// the sim-domain metric summary already collected into `result.metrics`
/// ("<value> | <summary>"; just the value when the snapshot is empty — the
/// pthread baseline).
void deriveDetail(RunResult& result, const std::string& value);

class Benchmark {
 public:
  virtual ~Benchmark() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Execute in `mode` on `units` threads/cores. `plan` (RCCE modes) is the
  /// translator→runtime contract (docs/execution_plan.md): per-variable
  /// placement classes choose the MPB/staged/uncached/cached realization of
  /// each shared region, the plan's per-UE owner sets become the machine's
  /// declared MPB scope (tight per-port reach; violations reported in the
  /// result), and cached regions route through the swcache. A null plan
  /// reproduces the legacy mode defaults (RcceMpb: the hand-written MPB
  /// configuration; RcceOffChip: everything uncached off-chip) bit for bit.
  /// In RcceOffChip mode on-chip placements demote to off-chip-uncached —
  /// the Fig. 6.1 configuration — while cacheability is still honored.
  [[nodiscard]] virtual RunResult run(Mode mode, int units,
                                      const sim::SccConfig& config,
                                      const partition::ExecutionPlan* plan = nullptr)
      const = 0;
};

/// Placement of workload region `name` under `plan` in `mode`: the plan's
/// class when the region is present, otherwise the legacy default
/// (`mpb_default` in RcceMpb mode, off-chip-uncached in RcceOffChip mode).
/// RcceOffChip demotes on-chip classes to off-chip-uncached.
[[nodiscard]] partition::PlacementClass resolvePlacement(
    const partition::ExecutionPlan* plan, const char* name, Mode mode,
    partition::PlacementClass mpb_default);

/// Count the plan's consequential regions (on-chip MPB pattern, cached
/// routing, or a non-default controller placement) that are NOT in the
/// workload's `known` region names — the drift detector behind
/// RunResult::plan_regions_unrealized. Regions with no runtime behavior
/// (default-placed off-chip-uncached, pattern-free resident scalars) don't
/// count: failing to look them up changes nothing.
[[nodiscard]] std::uint64_t countUnrealizedRegions(
    const partition::ExecutionPlan* plan, std::initializer_list<const char*> known);

/// Allocate a workload's shared array for plan region `name`: plan-carrying
/// (placement attribute + registered cacheability) when the plan names the
/// region, legacy unmapped (config.shm_swcache governs) otherwise — so
/// plan-less runs stay bit-identical to the pre-ExecutionPlan behavior.
/// Every allocation also registers `name` with the machine's region
/// profiler (SccMachine::registerShmRegion) — a no-op unless
/// config.region_metrics is set, where it feeds the per-region profiles in
/// MetricsSnapshot::regions.
template <typename T>
[[nodiscard]] rcce::ShmArray<T> makeShmArray(rcce::RcceEnv& env, std::size_t count,
                                             const partition::ExecutionPlan* plan,
                                             const char* name, Mode mode,
                                             partition::PlacementClass mpb_default) {
  const auto registered = [&env, name, count](rcce::ShmArray<T> arr) {
    env.machine().registerShmRegion(name, arr.byteOffset(0), arr.byteOffset(count));
    return arr;
  };
  if (plan != nullptr) {
    if (const partition::RegionPlan* r = plan->find(name)) {
      return registered(rcce::ShmArray<T>(
          env, count, resolvePlacement(plan, name, mode, mpb_default),
          r->controller, r->pinned_controller));
    }
  }
  return registered(rcce::ShmArray<T>(env, count));
}

// Factories. `scale` multiplies the default problem size (1.0 = the sizes
// used by the bench harness; tests use smaller scales).
[[nodiscard]] std::unique_ptr<Benchmark> makeCountPrimes(double scale = 1.0);
[[nodiscard]] std::unique_ptr<Benchmark> makePiApprox(double scale = 1.0);
[[nodiscard]] std::unique_ptr<Benchmark> makeSum35(double scale = 1.0);
[[nodiscard]] std::unique_ptr<Benchmark> makeDotProduct(double scale = 1.0);
[[nodiscard]] std::unique_ptr<Benchmark> makeLuDecomposition(double scale = 1.0);
[[nodiscard]] std::unique_ptr<Benchmark> makeStream(double scale = 1.0);

/// The six benchmarks of the paper, in its reporting order.
[[nodiscard]] std::vector<std::unique_ptr<Benchmark>> standardSuite(double scale = 1.0);

/// [first, last) element range handled by unit `u` of `units` under block
/// partitioning (the paper's divide-and-conquer pattern; the source of
/// CountPrimes' load imbalance).
struct Slice {
  std::size_t first = 0;
  std::size_t last = 0;
  [[nodiscard]] std::size_t size() const { return last - first; }
};
[[nodiscard]] Slice blockSlice(std::size_t n, int units, int u);

/// Pthreads C source of each benchmark (Appendix C pseudocode realized as
/// compilable C) for feeding the source-to-source translator. Throws
/// std::out_of_range for unknown names.
[[nodiscard]] const std::string& pthreadSource(const std::string& benchmark_name);
[[nodiscard]] std::vector<std::string> pthreadSourceNames();

}  // namespace hsm::workloads

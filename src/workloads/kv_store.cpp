#include "workloads/kv_store.h"

#include <cmath>
#include <cstring>

#include "rcce/rcce.h"
#include "sim/machine.h"
#include "threadrt/baseline.h"

namespace hsm::workloads {
namespace {

constexpr std::size_t kWordsPerItem = 4;  // 32 B items, 4 uncached 8 B words

/// Canonical item contents of `key` — what the slab is prepopulated with and
/// the only thing a set ever writes.
std::uint64_t canonicalWord(std::uint32_t key, std::size_t word) {
  return kvMix64((static_cast<std::uint64_t>(key) << 8) ^ word);
}

std::uint64_t ueSeed(std::uint64_t seed, int ue) {
  return kvMix64(seed ^ (static_cast<std::uint64_t>(ue) << 32));
}

/// Op `i` of UE `ue` is a get iff this counter-based draw lands under the
/// ratio — independent of the Zipf stream so the mix stays unbiased by key.
bool opIsGet(const KvParams& p, int ue, std::uint32_t i) {
  const std::uint64_t draw =
      kvMix64(p.seed ^ 0xD1CEULL ^ (static_cast<std::uint64_t>(ue) << 40) ^ i);
  return static_cast<double>(draw >> 11) * 0x1.0p-53 < p.get_ratio;
}

std::uint32_t indexCapacity(std::uint32_t num_keys) {
  std::uint32_t cap = 1;
  while (cap < 2 * num_keys) cap *= 2;
  return cap;
}

/// Build the open-addressing table: entry = (key+1) << 32 | slot, 0 = empty,
/// linear probing from splitmix64(key). Slot ids equal keys (slab in key
/// order), so the hottest items sit in the lowest stripes — the address
/// concentration a striped controller placement turns into a hot spot.
void buildIndex(const KvParams& p, std::uint64_t* index, std::uint32_t cap) {
  std::memset(index, 0, static_cast<std::size_t>(cap) * sizeof(std::uint64_t));
  const std::uint32_t mask = cap - 1;
  for (std::uint32_t key = 0; key < p.num_keys; ++key) {
    std::uint64_t h = kvMix64(key) & mask;
    while (index[h] != 0) h = (h + 1) & mask;
    index[h] = ((static_cast<std::uint64_t>(key) + 1) << 32) | key;
  }
}

void buildSlab(const KvParams& p, std::uint64_t* slots) {
  for (std::uint32_t key = 0; key < p.num_keys; ++key) {
    for (std::size_t w = 0; w < kWordsPerItem; ++w) {
      slots[key * kWordsPerItem + w] = canonicalWord(key, w);
    }
  }
}

sim::SimTask kvRcce(sim::CoreContext& ctx, KvParams p, std::uint32_t mask,
                    rcce::ShmArray<std::uint64_t> index,
                    rcce::ShmArray<std::uint64_t> slots,
                    rcce::ShmArray<std::uint64_t> checks) {
  ZipfGenerator zipf(p.num_keys, p.alpha, ueSeed(p.seed, ctx.ue()));
  std::uint64_t chk = 0;
  std::uint64_t item[kWordsPerItem];
  for (std::uint32_t i = 0; i < p.ops_per_ue; ++i) {
    const std::uint32_t key = zipf.next();
    std::uint64_t h = kvMix64(key) & mask;
    std::uint64_t entry = 0;
    for (;;) {
      co_await index.read(ctx, h, &entry);
      co_await ctx.computeOps(2, sim::OpClass::IntAlu);
      if ((entry >> 32) == static_cast<std::uint64_t>(key) + 1) break;
      h = (h + 1) & mask;
    }
    const auto slot = static_cast<std::uint32_t>(entry & 0xFFFFFFFFULL);
    if (opIsGet(p, ctx.ue(), i)) {
      co_await slots.readBlock(ctx, slot * kWordsPerItem, kWordsPerItem, item);
      for (std::size_t w = 0; w < kWordsPerItem; ++w) chk = kvMix64(chk ^ item[w]);
      co_await ctx.computeOps(kWordsPerItem, sim::OpClass::IntAlu);
    } else {
      for (std::size_t w = 0; w < kWordsPerItem; ++w) item[w] = canonicalWord(key, w);
      co_await ctx.computeOps(kWordsPerItem, sim::OpClass::IntAlu);
      co_await slots.writeBlock(ctx, slot * kWordsPerItem, kWordsPerItem, item);
    }
  }
  co_await checks.write(ctx, static_cast<std::size_t>(ctx.ue()), chk);
  co_await ctx.barrier();
}

sim::SimTask kvThread(threadrt::ThreadContext& ctx, KvParams p, std::uint32_t mask,
                      std::uint64_t index0, std::uint64_t slots0,
                      std::uint64_t checks0) {
  ZipfGenerator zipf(p.num_keys, p.alpha, ueSeed(p.seed, ctx.tid()));
  std::uint64_t chk = 0;
  std::uint64_t item[kWordsPerItem];
  for (std::uint32_t i = 0; i < p.ops_per_ue; ++i) {
    const std::uint32_t key = zipf.next();
    std::uint64_t h = kvMix64(key) & mask;
    std::uint64_t entry = 0;
    for (;;) {
      co_await ctx.memRead(index0 + h * 8, &entry, sizeof(entry));
      co_await ctx.computeOps(2, sim::OpClass::IntAlu);
      if ((entry >> 32) == static_cast<std::uint64_t>(key) + 1) break;
      h = (h + 1) & mask;
    }
    const auto slot = static_cast<std::uint32_t>(entry & 0xFFFFFFFFULL);
    const std::uint64_t item_addr = slots0 + slot * kWordsPerItem * 8;
    if (opIsGet(p, ctx.tid(), i)) {
      co_await ctx.memRead(item_addr, item, sizeof(item));
      for (std::size_t w = 0; w < kWordsPerItem; ++w) chk = kvMix64(chk ^ item[w]);
      co_await ctx.computeOps(kWordsPerItem, sim::OpClass::IntAlu);
    } else {
      for (std::size_t w = 0; w < kWordsPerItem; ++w) item[w] = canonicalWord(key, w);
      co_await ctx.computeOps(kWordsPerItem, sim::OpClass::IntAlu);
      co_await ctx.memWrite(item_addr, item, sizeof(item));
    }
  }
  co_await ctx.memWrite(checks0 + static_cast<std::uint64_t>(ctx.tid()) * 8, &chk,
                        sizeof(chk));
}

class KvStore final : public Benchmark {
 public:
  explicit KvStore(KvParams params) : params_(params) {}
  KvStore(KvParams params, double scale) : params_(params) {
    params_.ops_per_ue =
        static_cast<std::uint32_t>(static_cast<double>(params_.ops_per_ue) * scale);
    if (params_.ops_per_ue < 64) params_.ops_per_ue = 64;
  }

  [[nodiscard]] std::string name() const override { return "KvStore"; }

  [[nodiscard]] RunResult run(Mode mode, int units, const sim::SccConfig& config,
                              const partition::ExecutionPlan* plan)
      const override {
    RunResult result;
    result.benchmark = name();
    result.mode = mode;
    result.units = units;
    const KvParams p = params_;
    const std::uint32_t cap = indexCapacity(p.num_keys);
    const std::uint32_t mask = cap - 1;

    std::vector<std::uint64_t> computed(static_cast<std::size_t>(units), 0);
    bool slab_canonical = true;
    if (mode == Mode::PthreadSingleCore) {
      threadrt::SingleCoreRuntime rt(config);
      const std::uint64_t index0 = 4096;
      const std::uint64_t slots0 = index0 + static_cast<std::uint64_t>(cap) * 8;
      const std::uint64_t checks0 =
          slots0 + static_cast<std::uint64_t>(p.num_keys) * kWordsPerItem * 8;
      rt.machine().reservePrivate(0, checks0 + static_cast<std::size_t>(units) * 8);
      buildIndex(p, reinterpret_cast<std::uint64_t*>(rt.machine().privData(0, index0)),
                 cap);
      buildSlab(p, reinterpret_cast<std::uint64_t*>(rt.machine().privData(0, slots0)));
      std::memset(rt.machine().privData(0, checks0), 0,
                  static_cast<std::size_t>(units) * 8);
      rt.launch(units, [&](threadrt::ThreadContext& ctx) {
        return kvThread(ctx, p, mask, index0, slots0, checks0);
      });
      result.makespan = rt.run();
      std::memcpy(computed.data(), rt.machine().privData(0, checks0),
                  static_cast<std::size_t>(units) * 8);
      const auto* slab =
          reinterpret_cast<const std::uint64_t*>(rt.machine().privData(0, slots0));
      slab_canonical = slabCanonical(p, slab);
    } else {
      sim::SccMachine machine(config);
      const KvLayout layout = setupKvRcce(machine, p, units, plan, mode);
      result.makespan = machine.run();
      recordMachineRobustness(result, machine);
      result.plan_regions_unrealized =
          countUnrealizedRegions(plan, {"kv_index", "kv_slots", "kv_checks"});
      std::memcpy(computed.data(), machine.shmData(layout.checks_offset),
                  static_cast<std::size_t>(units) * 8);
      slab_canonical = slabCanonical(
          p, reinterpret_cast<const std::uint64_t*>(
                 machine.shmData(layout.slots_offset)));
    }

    bool checks_ok = slab_canonical;
    for (int u = 0; u < units; ++u) {
      checks_ok = checks_ok &&
                  computed[static_cast<std::size_t>(u)] == kvReferenceChecksum(p, u);
    }
    result.verified = checks_ok;
    deriveDetail(result,
                 "chk0=" + std::to_string(computed.empty() ? 0 : computed[0]) +
                     " ops=" +
                     std::to_string(static_cast<std::uint64_t>(p.ops_per_ue) *
                                    static_cast<std::uint64_t>(units)));
    return result;
  }

 private:
  static bool slabCanonical(const KvParams& p, const std::uint64_t* slab) {
    for (std::uint32_t key = 0; key < p.num_keys; ++key) {
      for (std::size_t w = 0; w < kWordsPerItem; ++w) {
        if (slab[key * kWordsPerItem + w] != canonicalWord(key, w)) return false;
      }
    }
    return true;
  }

  KvParams params_;
};

}  // namespace

KvLayout setupKvRcce(sim::SccMachine& machine, const KvParams& params, int ues,
                     const partition::ExecutionPlan* plan, Mode mode) {
  const KvParams p = params;
  const std::uint32_t cap = indexCapacity(p.num_keys);
  const std::uint32_t mask = cap - 1;
  rcce::RcceEnv env(machine);
  using partition::PlacementClass;
  rcce::ShmArray<std::uint64_t> index = makeShmArray<std::uint64_t>(
      env, cap, plan, "kv_index", mode, PlacementClass::kOffChipUncached);
  rcce::ShmArray<std::uint64_t> slots = makeShmArray<std::uint64_t>(
      env, static_cast<std::size_t>(p.num_keys) * kWordsPerItem, plan, "kv_slots",
      mode, PlacementClass::kOffChipUncached);
  rcce::ShmArray<std::uint64_t> checks = makeShmArray<std::uint64_t>(
      env, static_cast<std::size_t>(ues), plan, "kv_checks", mode,
      PlacementClass::kOffChipUncached);
  buildIndex(p, index.hostData(), cap);
  buildSlab(p, slots.hostData());
  std::memset(checks.hostData(), 0, static_cast<std::size_t>(ues) * 8);
  // Deliberate benign race: PUTs store the key's CANONICAL value, so two UEs
  // writing the same slot unsynchronized always land identical idempotent
  // bytes (that is the workload's last-writer-wins contract, and what the
  // GET-side checksum verifies). Exempt the slab so the race detector does
  // not flag the contract the benchmark intentionally exercises; kv_index is
  // read-only after setup and kv_checks is per-UE disjoint — both clean.
  machine.setShmDrfExempt(
      slots.byteOffset(0),
      slots.byteOffset(0) + static_cast<std::uint64_t>(p.num_keys) * kWordsPerItem * 8);
  // launch() invokes the program lambda synchronously per context; the
  // coroutine copies the ShmArrays into its frame, so the locals may die.
  machine.launch(sim::LaunchSpec(ues, [&](sim::CoreContext& ctx) {
                   return kvRcce(ctx, p, mask, index, slots, checks);
                 }).withPlan(plan));
  return KvLayout{index.byteOffset(0), slots.byteOffset(0), checks.byteOffset(0)};
}

std::uint64_t kvReferenceChecksum(const KvParams& params, int ue) {
  ZipfGenerator zipf(params.num_keys, params.alpha, ueSeed(params.seed, ue));
  std::uint64_t chk = 0;
  for (std::uint32_t i = 0; i < params.ops_per_ue; ++i) {
    const std::uint32_t key = zipf.next();
    if (!opIsGet(params, ue, i)) continue;
    for (std::size_t w = 0; w < kWordsPerItem; ++w) {
      chk = kvMix64(chk ^ canonicalWord(key, w));
    }
  }
  return chk;
}

ZipfGenerator::ZipfGenerator(std::uint32_t num_keys, double alpha, std::uint64_t seed)
    : seed_(seed) {
  if (num_keys == 0) num_keys = 1;
  cdf_.resize(num_keys);
  double total = 0.0;
  for (std::uint32_t k = 0; k < num_keys; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = total;
  }
  for (std::uint32_t k = 0; k < num_keys; ++k) cdf_[k] /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding at the tail
}

std::uint32_t ZipfGenerator::next() {
  const std::uint64_t bits = kvMix64(seed_ ^ (counter_++ * 0x9E3779B97F4A7C15ULL));
  const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
  // Inverse CDF by binary search: first rank whose cumulative mass covers u.
  std::uint32_t lo = 0;
  std::uint32_t hi = static_cast<std::uint32_t>(cdf_.size()) - 1;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] <= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfGenerator::probability(std::uint32_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

std::unique_ptr<Benchmark> makeKvStore(double scale) {
  return std::make_unique<KvStore>(KvParams{}, scale);
}

std::unique_ptr<Benchmark> makeKvStore(const KvParams& params) {
  return std::make_unique<KvStore>(params);
}

}  // namespace hsm::workloads

// KV store under Zipf traffic — the seventh benchmark, and the workload the
// controller-placement machinery (partition::ControllerPlacement) is sized
// against. Items live in a slab of fixed-size slots behind an open-addressing
// hash index, both in off-chip shared memory; each UE drives a mixed get/set
// stream whose keys follow a deterministic Zipf distribution. Skewed keys
// concentrate traffic on few addresses, so the address→controller mapping the
// ExecutionPlan picks decides whether one memory controller hot-spots
// (striped placement) or the load follows the evenly-spread requesters
// (owner-compute) — the controller_load_cv metric in RunResult measures it.
//
// Determinism & DRF: sets write the CANONICAL value of their key (a pure
// function of the key, the same bytes the slab is prepopulated with), so
// concurrent writers race benignly and every get observes canonical items no
// matter the interleaving. Per-UE get checksums land in disjoint check slots
// and are verified against an untimed host-side replay of the same streams.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "workloads/benchmark.h"

namespace hsm::workloads {

/// splitmix64 finalizer — the benchmark's only source of hashing and
/// pseudo-randomness (shared with the tests so replays match exactly).
[[nodiscard]] constexpr std::uint64_t kvMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Deterministic Zipf(alpha) key generator over ranks [0, num_keys):
/// a precomputed inverse-CDF table indexed by counter-based splitmix64
/// uniforms. Stateless beyond the draw counter — two generators built with
/// the same (num_keys, alpha, seed) produce identical streams on any
/// platform, and distinct seeds produce decorrelated streams with the same
/// marginal distribution (the properties the tests pin down).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint32_t num_keys, double alpha, std::uint64_t seed);

  /// Next key rank (0 = the hottest key).
  [[nodiscard]] std::uint32_t next();
  [[nodiscard]] std::uint32_t numKeys() const {
    return static_cast<std::uint32_t>(cdf_.size());
  }
  /// Probability mass of rank `k` (for skew assertions in tests).
  [[nodiscard]] double probability(std::uint32_t k) const;

 private:
  std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k), cdf_.back() == 1
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
};

struct KvParams {
  std::uint32_t num_keys = 4096;
  double alpha = 1.2;          ///< Zipf skew (~18% of draws hit the top key)
  std::uint32_t ops_per_ue = 2048;
  double get_ratio = 0.8;      ///< remainder are sets
  std::uint64_t seed = 0x5EEDBA5EULL;
};

/// The benchmark's plan region names ("kv_index" is the open-addressing
/// table, "kv_slots" the item slab, "kv_checks" the per-UE checksum slots) —
/// an ExecutionPlan that names them can re-place their controller mapping.
[[nodiscard]] std::unique_ptr<Benchmark> makeKvStore(double scale = 1.0);
[[nodiscard]] std::unique_ptr<Benchmark> makeKvStore(const KvParams& params);

/// Where setupKvRcce's three regions landed in shared DRAM — for callers
/// that read results (machine.shmData) after machine.run().
struct KvLayout {
  std::uint64_t index_offset = 0;
  std::uint64_t slots_offset = 0;
  std::uint64_t checks_offset = 0;
};

/// Allocate and prepopulate the KV regions on `machine`, then launch `ues`
/// UEs of the RCCE kernel under `plan` — the Benchmark's RCCE realization
/// exposed for harnesses (bench/micro_sim) that own the machine and read its
/// stats. The caller runs machine.run(); kvReferenceChecksum replays the
/// expected per-UE results.
KvLayout setupKvRcce(sim::SccMachine& machine, const KvParams& params, int ues,
                     const partition::ExecutionPlan* plan,
                     Mode mode = Mode::RcceOffChip);

/// Expected checksum of UE `ue`'s get stream: the untimed host-side replay
/// the benchmark verifies against (gets always observe canonical items —
/// see the DRF note above).
[[nodiscard]] std::uint64_t kvReferenceChecksum(const KvParams& params, int ue);

}  // namespace hsm::workloads

// Dot Product (paper §5.2, "linear algebra" group): large double arrays in
// off-chip memory with "at least 8 cores in contention per memory
// controller" — memory-bound, so Fig. 6.1 speedup is well below 32x, and
// MPB-staged bulk transfers recover substantial time in Fig. 6.2.
#include <cmath>
#include <cstring>
#include <vector>

#include "rcce/rcce.h"
#include "sim/machine.h"
#include "threadrt/baseline.h"
#include "workloads/benchmark.h"

namespace hsm::workloads {
namespace {

constexpr std::size_t kChunk = 256;
constexpr int kSumLock = 0;

struct DotParams {
  std::size_t n = 1 << 18;  // elements per vector
};

double elemA(std::size_t i) { return 0.5 + static_cast<double>(i % 128) * 0.25; }
double elemB(std::size_t i) { return 1.0 + static_cast<double>(i % 64) * 0.125; }

double referenceDot(std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += elemA(i) * elemB(i);
  return sum;
}

sim::SimTask dotThread(threadrt::ThreadContext& ctx, DotParams p, std::uint64_t a0,
                       std::uint64_t b0, std::uint64_t sum_addr) {
  const Slice s = blockSlice(p.n, ctx.numThreads(), ctx.tid());
  std::vector<double> a_buf(kChunk), b_buf(kChunk);
  double sum = 0.0;
  for (std::size_t i = s.first; i < s.last; i += kChunk) {
    const std::size_t c = std::min(kChunk, s.last - i);
    co_await ctx.memRead(a0 + i * 8, a_buf.data(), c * 8);
    co_await ctx.memRead(b0 + i * 8, b_buf.data(), c * 8);
    for (std::size_t k = 0; k < c; ++k) sum += a_buf[k] * b_buf[k];
    co_await ctx.computeOps(c, sim::OpClass::FpMul);
    co_await ctx.computeOps(c, sim::OpClass::FpAdd);
  }
  co_await ctx.lockAcquire(kSumLock);
  double global = 0.0;
  co_await ctx.memRead(sum_addr, &global, sizeof(global));
  global += sum;
  co_await ctx.memWrite(sum_addr, &global, sizeof(global));
  co_await ctx.lockRelease(kSumLock);
}

sim::SimTask dotRcce(sim::CoreContext& ctx, DotParams p, rcce::ShmArray<double> a,
                     rcce::ShmArray<double> b, rcce::ShmArray<double> acc,
                     rcce::MpbArray<double> stage, rcce::MpbArray<double> mpb_acc,
                     bool stage_ab, bool acc_mpb) {
  const Slice s = blockSlice(p.n, ctx.numUes(), ctx.ue());
  std::vector<double> a_buf(kChunk), b_buf(kChunk);
  double sum = 0.0;
  const int me = ctx.ue();
  for (std::size_t i = s.first; i < s.last; i += kChunk) {
    const std::size_t c = std::min(kChunk, s.last - i);
    if (stage_ab) {
      // Bulk copies are DMAs into this core's MPB slice; depositing into
      // the backing store is untimed (the bulk op carries the cost), then
      // the core reads the staged data on-chip.
      co_await a.readBulk(ctx, i, c, a_buf.data());
      std::memcpy(stage.hostData(me), a_buf.data(), c * sizeof(double));
      co_await b.readBulk(ctx, i, c, b_buf.data());
      std::memcpy(stage.hostData(me) + kChunk, b_buf.data(), c * sizeof(double));
      co_await stage.readBlock(ctx, me, 0, c, a_buf.data());
      co_await stage.readBlock(ctx, me, kChunk, c, b_buf.data());
    } else {
      co_await a.readBlock(ctx, i, c, a_buf.data());
      co_await b.readBlock(ctx, i, c, b_buf.data());
    }
    for (std::size_t k = 0; k < c; ++k) sum += a_buf[k] * b_buf[k];
    co_await ctx.computeOps(c, sim::OpClass::FpMul);
    co_await ctx.computeOps(c, sim::OpClass::FpAdd);
  }
  co_await ctx.lockAcquire(kSumLock);
  double global = 0.0;
  if (acc_mpb) {
    // Plan-driven on-chip accumulator: root-funnel through UE 0's slot.
    co_await mpb_acc.read(ctx, 0, 0, &global);
    global += sum;
    co_await mpb_acc.write(ctx, 0, 0, global);
  } else {
    co_await acc.read(ctx, 0, &global);
    global += sum;
    co_await acc.write(ctx, 0, global);
  }
  co_await ctx.lockRelease(kSumLock);
  co_await ctx.barrier();
}

class DotProduct final : public Benchmark {
 public:
  explicit DotProduct(double scale) {
    params_.n = static_cast<std::size_t>(static_cast<double>(params_.n) * scale);
    if (params_.n < 1024) params_.n = 1024;
  }

  [[nodiscard]] std::string name() const override { return "DotProduct"; }

  // (No repeated default for plan: defaults on virtuals bind to the
  // static type — Benchmark::run's declaration owns it.)
  [[nodiscard]] RunResult run(Mode mode, int units, const sim::SccConfig& config,
                              const partition::ExecutionPlan* plan)
      const override {
    RunResult result;
    result.benchmark = name();
    result.mode = mode;
    result.units = units;
    const DotParams p = params_;

    double computed = 0.0;
    if (mode == Mode::PthreadSingleCore) {
      threadrt::SingleCoreRuntime rt(config);
      const std::uint64_t a0 = 4096;
      const std::uint64_t b0 = a0 + p.n * 8;
      const std::uint64_t sum_addr = 0;
      rt.machine().reservePrivate(0, b0 + p.n * 8);
      auto* a_host = reinterpret_cast<double*>(rt.machine().privData(0, a0));
      auto* b_host = reinterpret_cast<double*>(rt.machine().privData(0, b0));
      for (std::size_t i = 0; i < p.n; ++i) {
        a_host[i] = elemA(i);
        b_host[i] = elemB(i);
      }
      std::memset(rt.machine().privData(0, sum_addr), 0, sizeof(double));
      rt.launch(units, [&](threadrt::ThreadContext& ctx) {
        return dotThread(ctx, p, a0, b0, sum_addr);
      });
      result.makespan = rt.run();
      std::memcpy(&computed, rt.machine().privData(0, sum_addr), sizeof(double));
    } else {
      sim::SccMachine machine(config);
      rcce::RcceEnv env(machine);
      using partition::PlacementClass;
      // "a"/"b" are the streamed input vectors (legacy RcceMpb stages them
      // through the UE's own slice; the translator classifies them
      // read-mostly → off-chip-cached); "partial" is the reduction.
      const bool stage_ab = partition::isOnChip(
          resolvePlacement(plan, "a", mode, PlacementClass::kOnChipStaged));
      const bool acc_mpb = partition::isOnChip(
          resolvePlacement(plan, "partial", mode, PlacementClass::kOffChipUncached));
      rcce::ShmArray<double> a =
          makeShmArray<double>(env, p.n, plan, "a", mode, PlacementClass::kOnChipStaged);
      rcce::ShmArray<double> b =
          makeShmArray<double>(env, p.n, plan, "b", mode, PlacementClass::kOnChipStaged);
      rcce::ShmArray<double> acc = makeShmArray<double>(
          env, 1, plan, "partial", mode, PlacementClass::kOffChipUncached);
      rcce::MpbArray<double> stage(env, units, 2 * kChunk);
      rcce::MpbArray<double> mpb_acc(env, units, 1);
      for (std::size_t i = 0; i < p.n; ++i) {
        a.hostData()[i] = elemA(i);
        b.hostData()[i] = elemB(i);
      }
      *acc.hostData() = 0.0;
      *mpb_acc.hostData(0) = 0.0;
      machine.launch(sim::LaunchSpec(units, [&](sim::CoreContext& ctx) {
        return dotRcce(ctx, p, a, b, acc, stage, mpb_acc, stage_ab, acc_mpb);
      }).withPlan(plan));
      result.makespan = machine.run();
      recordMachineRobustness(result, machine);
      result.plan_regions_unrealized =
          countUnrealizedRegions(plan, {"a", "b", "partial"});
      computed = acc_mpb ? *mpb_acc.hostData(0) : *acc.hostData();
    }

    const double expected = referenceDot(p.n);
    result.verified = std::abs(computed - expected) < 1e-6 * std::abs(expected);
    deriveDetail(result, "dot=" + std::to_string(computed));
    return result;
  }

 private:
  DotParams params_;
};

}  // namespace

std::unique_ptr<Benchmark> makeDotProduct(double scale) {
  return std::make_unique<DotProduct>(scale);
}

}  // namespace hsm::workloads

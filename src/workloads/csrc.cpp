// Pthreads C sources for each benchmark (Appendix C pseudocode realized as
// compilable C in the subset the translator accepts). These are the inputs
// the source-to-source translator converts to RCCE programs; the simulator
// twins in this library implement the same computations.
#include <stdexcept>
#include <unordered_map>

#include "workloads/benchmark.h"

namespace hsm::workloads {
namespace {

const char* const kCountPrimes = R"(#include <stdio.h>
#include <pthread.h>

int limit = 20000;
int total[32];

void *count_primes(void *tid) {
    int id = (int)tid;
    int lo = 2 + id * (limit - 1) / 32;
    int hi = 2 + (id + 1) * (limit - 1) / 32;
    int i;
    int j;
    int prime;
    int count = 0;
    for (i = lo; i < hi; i++) {
        prime = 1;
        for (j = 2; j < i; j++) {
            if (i % j == 0) {
                prime = 0;
                break;
            }
        }
        count = count + prime;
    }
    total[id] = count;
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[32];
    int t;
    int sum = 0;
    for (t = 0; t < 32; t++) {
        pthread_create(&threads[t], NULL, count_primes, (void *)t);
    }
    for (t = 0; t < 32; t++) {
        pthread_join(threads[t], NULL);
        sum += total[t];
    }
    printf("primes: %d\n", sum);
    return 0;
}
)";

const char* const kPiApprox = R"(#include <stdio.h>
#include <pthread.h>

double gsum = 0.0;
pthread_mutex_t lock;
int steps = 1048576;

void *pi_chunk(void *tid) {
    int id = (int)tid;
    int lo = id * steps / 32;
    int hi = (id + 1) * steps / 32;
    double step = 1.0 / steps;
    double x;
    double sum = 0.0;
    int i;
    for (i = lo; i < hi; i++) {
        x = (i + 0.5) * step;
        sum = sum + 4.0 / (1.0 + x * x);
    }
    pthread_mutex_lock(&lock);
    gsum = gsum + sum * step;
    pthread_mutex_unlock(&lock);
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[32];
    int t;
    pthread_mutex_init(&lock, NULL);
    for (t = 0; t < 32; t++) {
        pthread_create(&threads[t], NULL, pi_chunk, (void *)t);
    }
    for (t = 0; t < 32; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("pi: %f\n", gsum);
    return 0;
}
)";

const char* const kSum35 = R"(#include <stdio.h>
#include <pthread.h>

int limit = 3000000;
long partial[32];

void *sum35(void *tid) {
    int id = (int)tid;
    int lo = id * limit / 32;
    int hi = (id + 1) * limit / 32;
    long sum = 0;
    int i;
    for (i = lo; i < hi; i++) {
        if (i % 3 == 0 || i % 5 == 0) {
            sum = sum + i;
        }
    }
    partial[id] = sum;
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[32];
    int t;
    long total = 0;
    for (t = 0; t < 32; t++) {
        pthread_create(&threads[t], NULL, sum35, (void *)t);
    }
    for (t = 0; t < 32; t++) {
        pthread_join(threads[t], NULL);
        total += partial[t];
    }
    printf("sum: %ld\n", total);
    return 0;
}
)";

const char* const kDotProduct = R"(#include <stdio.h>
#include <pthread.h>

double a[262144];
double b[262144];
double partial[32];
int n = 262144;

void *dot(void *tid) {
    int id = (int)tid;
    int lo = id * n / 32;
    int hi = (id + 1) * n / 32;
    double sum = 0.0;
    int i;
    for (i = lo; i < hi; i++) {
        sum = sum + a[i] * b[i];
    }
    partial[id] = sum;
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[32];
    int t;
    int i;
    double result = 0.0;
    for (i = 0; i < n; i++) {
        a[i] = 0.5 + i * 0.25;
        b[i] = 1.0 + i * 0.125;
    }
    for (t = 0; t < 32; t++) {
        pthread_create(&threads[t], NULL, dot, (void *)t);
    }
    for (t = 0; t < 32; t++) {
        pthread_join(threads[t], NULL);
        result += partial[t];
    }
    printf("dot: %f\n", result);
    return 0;
}
)";

const char* const kLuDecomp = R"(#include <stdio.h>
#include <pthread.h>

double m[9216];
int n = 96;
pthread_barrier_t step_barrier;

void *lu(void *tid) {
    int id = (int)tid;
    int k;
    int i;
    int j;
    double factor;
    for (k = 0; k < n; k++) {
        for (i = k + 1; i < n; i++) {
            if (i % 32 == id) {
                factor = m[i * n + k] / m[k * n + k];
                m[i * n + k] = factor;
                for (j = k + 1; j < n; j++) {
                    m[i * n + j] = m[i * n + j] - factor * m[k * n + j];
                }
            }
        }
        pthread_barrier_wait(&step_barrier);
    }
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[32];
    int t;
    int i;
    int j;
    pthread_barrier_init(&step_barrier, NULL, 32);
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            if (i == j) {
                m[i * n + j] = 192.0;
            } else {
                m[i * n + j] = 1.0;
            }
        }
    }
    for (t = 0; t < 32; t++) {
        pthread_create(&threads[t], NULL, lu, (void *)t);
    }
    for (t = 0; t < 32; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("lu done: %f\n", m[0]);
    return 0;
}
)";

const char* const kStream = R"(#include <stdio.h>
#include <pthread.h>

double a[65536];
double b[65536];
double c[65536];
int n = 65536;

void *stream(void *tid) {
    int id = (int)tid;
    int lo = id * n / 32;
    int hi = (id + 1) * n / 32;
    int j;
    for (j = lo; j < hi; j++) {
        c[j] = a[j];
    }
    for (j = lo; j < hi; j++) {
        b[j] = 3.0 * c[j];
    }
    for (j = lo; j < hi; j++) {
        c[j] = a[j] + b[j];
    }
    for (j = lo; j < hi; j++) {
        a[j] = b[j] + 3.0 * c[j];
    }
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[32];
    int t;
    int j;
    for (j = 0; j < n; j++) {
        a[j] = 1.0;
        b[j] = 2.0;
        c[j] = 0.0;
    }
    for (t = 0; t < 32; t++) {
        pthread_create(&threads[t], NULL, stream, (void *)t);
    }
    for (t = 0; t < 32; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("stream done: %f\n", c[0]);
    return 0;
}
)";

const std::unordered_map<std::string, std::string>& sourceTable() {
  static const std::unordered_map<std::string, std::string> table = {
      {"CountPrimes", kCountPrimes}, {"PiApprox", kPiApprox},
      {"3-5-Sum", kSum35},           {"DotProduct", kDotProduct},
      {"LU", kLuDecomp},             {"Stream", kStream},
  };
  return table;
}

}  // namespace

const std::string& pthreadSource(const std::string& benchmark_name) {
  const auto& table = sourceTable();
  const auto it = table.find(benchmark_name);
  if (it == table.end()) {
    throw std::out_of_range("no pthread source for benchmark: " + benchmark_name);
  }
  return it->second;
}

std::vector<std::string> pthreadSourceNames() {
  return {"PiApprox", "3-5-Sum", "CountPrimes", "Stream", "DotProduct", "LU"};
}

}  // namespace hsm::workloads

// Count Primes (paper Algorithm 11): trial division with the full j<i loop.
// Work per candidate grows with its value, so block partitioning leaves the
// high-range cores with ~2x the average work — the load imbalance behind
// CountPrimes' ~16x (not 32x) in Fig. 6.1.
#include <cstring>

#include "rcce/rcce.h"
#include "sim/machine.h"
#include "threadrt/baseline.h"
#include "workloads/benchmark.h"

namespace hsm::workloads {
namespace {

constexpr int kSumLock = 0;

struct PrimesParams {
  std::size_t limit = 20'000;
};

/// Executes Algorithm 11's inner loop for one candidate; returns
/// {is_prime, trial_divisions_performed}.
std::pair<bool, std::size_t> trialDivide(std::size_t i) {
  if (i < 2) return {false, 0};
  std::size_t trials = 0;
  for (std::size_t j = 2; j < i; ++j) {
    ++trials;
    if (i % j == 0) return {false, trials};
  }
  return {true, trials};
}

long long referenceCount(std::size_t limit) {
  long long total = 0;
  for (std::size_t i = 2; i <= limit; ++i) total += trialDivide(i).first ? 1 : 0;
  return total;
}

// Candidates are batched (one event per batch) while accumulating the
// simulated division cost exactly.

sim::SimTask primesThread(threadrt::ThreadContext& ctx, PrimesParams p,
                          std::uint64_t count_addr) {
  const Slice s = blockSlice(p.limit - 1, ctx.numThreads(), ctx.tid());
  const std::size_t lo = 2 + s.first;
  const std::size_t hi = 2 + s.last;
  long long primes = 0;
  constexpr std::size_t kBatch = 64;
  for (std::size_t i = lo; i < hi; i += kBatch) {
    const std::size_t end = std::min(i + kBatch, hi);
    std::uint64_t divisions = 0;
    for (std::size_t c = i; c < end; ++c) {
      const auto [is_prime, trials] = trialDivide(c);
      primes += is_prime ? 1 : 0;
      divisions += trials;
    }
    co_await ctx.computeOps(divisions, sim::OpClass::IntDiv);
    co_await ctx.computeOps(divisions, sim::OpClass::IntAlu);
  }
  co_await ctx.lockAcquire(kSumLock);
  long long global = 0;
  co_await ctx.memRead(count_addr, &global, sizeof(global));
  global += primes;
  co_await ctx.memWrite(count_addr, &global, sizeof(global));
  co_await ctx.lockRelease(kSumLock);
}

sim::SimTask primesRcce(sim::CoreContext& ctx, PrimesParams p,
                        rcce::ShmArray<long long> acc,
                        rcce::MpbArray<long long> mpb_acc, bool use_mpb) {
  const Slice s = blockSlice(p.limit - 1, ctx.numUes(), ctx.ue());
  const std::size_t lo = 2 + s.first;
  const std::size_t hi = 2 + s.last;
  long long primes = 0;
  constexpr std::size_t kBatch = 64;
  for (std::size_t i = lo; i < hi; i += kBatch) {
    const std::size_t end = std::min(i + kBatch, hi);
    std::uint64_t divisions = 0;
    for (std::size_t c = i; c < end; ++c) {
      const auto [is_prime, trials] = trialDivide(c);
      primes += is_prime ? 1 : 0;
      divisions += trials;
    }
    co_await ctx.computeOps(divisions, sim::OpClass::IntDiv);
    co_await ctx.computeOps(divisions, sim::OpClass::IntAlu);
  }
  co_await ctx.lockAcquire(kSumLock);
  long long global = 0;
  if (use_mpb) {
    co_await mpb_acc.read(ctx, 0, 0, &global);
    global += primes;
    co_await mpb_acc.write(ctx, 0, 0, global);
  } else {
    co_await acc.read(ctx, 0, &global);
    global += primes;
    co_await acc.write(ctx, 0, global);
  }
  co_await ctx.lockRelease(kSumLock);
  co_await ctx.barrier();
}

class CountPrimes final : public Benchmark {
 public:
  explicit CountPrimes(double scale) {
    params_.limit = static_cast<std::size_t>(static_cast<double>(params_.limit) * scale);
    if (params_.limit < 100) params_.limit = 100;
  }

  [[nodiscard]] std::string name() const override { return "CountPrimes"; }

  // (No repeated default for plan: defaults on virtuals bind to the
  // static type — Benchmark::run's declaration owns it.)
  [[nodiscard]] RunResult run(Mode mode, int units, const sim::SccConfig& config,
                              const partition::ExecutionPlan* plan)
      const override {
    RunResult result;
    result.benchmark = name();
    result.mode = mode;
    result.units = units;
    const PrimesParams p = params_;

    long long computed = 0;
    if (mode == Mode::PthreadSingleCore) {
      threadrt::SingleCoreRuntime rt(config);
      const std::uint64_t count_addr = 0;
      std::memset(rt.machine().privData(0, count_addr), 0, sizeof(long long));
      rt.launch(units, [&](threadrt::ThreadContext& ctx) {
        return primesThread(ctx, p, count_addr);
      });
      result.makespan = rt.run();
      std::memcpy(&computed, rt.machine().privData(0, count_addr), sizeof(long long));
    } else {
      sim::SccMachine machine(config);
      rcce::RcceEnv env(machine);
      // "total" is the source's per-thread count array, summed in main:
      // on-chip placement funnels the reduction through UE 0's slot.
      const bool use_mpb = partition::isOnChip(resolvePlacement(
          plan, "total", mode, partition::PlacementClass::kOnChipResident));
      rcce::ShmArray<long long> acc = makeShmArray<long long>(
          env, 1, plan, "total", mode, partition::PlacementClass::kOnChipResident);
      rcce::MpbArray<long long> mpb_acc(env, units, 1);
      *acc.hostData() = 0;
      *mpb_acc.hostData(0) = 0;
      machine.launch(sim::LaunchSpec(units, [&](sim::CoreContext& ctx) {
        return primesRcce(ctx, p, acc, mpb_acc, use_mpb);
      }).withPlan(plan));
      result.makespan = machine.run();
      recordMachineRobustness(result, machine);
      result.plan_regions_unrealized = countUnrealizedRegions(plan, {"total"});
      computed = use_mpb ? *mpb_acc.hostData(0) : *acc.hostData();
    }

    result.verified = computed == referenceCount(p.limit);
    deriveDetail(result, "primes=" + std::to_string(computed));
    return result;
  }

 private:
  PrimesParams params_;
};

}  // namespace

std::unique_ptr<Benchmark> makeCountPrimes(double scale) {
  return std::make_unique<CountPrimes>(scale);
}

}  // namespace hsm::workloads

// 3-5-Sum: sum all multiples of 3 or 5 below N ("sum increasingly large
// multiples of 3 and 5", paper §5.2). Integer-division heavy and perfectly
// balanced — close to ideal scaling (~29x in Fig. 6.1).
#include <cstring>

#include "rcce/rcce.h"
#include "sim/machine.h"
#include "threadrt/baseline.h"
#include "workloads/benchmark.h"

namespace hsm::workloads {
namespace {

constexpr std::size_t kChunk = 8192;
constexpr int kSumLock = 0;

struct Sum35Params {
  std::size_t limit = 3'000'000;
};

long long chunkSum(std::size_t first, std::size_t last) {
  long long sum = 0;
  for (std::size_t i = first; i < last; ++i) {
    if (i % 3 == 0 || i % 5 == 0) sum += static_cast<long long>(i);
  }
  return sum;
}

long long referenceSum(std::size_t limit) { return chunkSum(0, limit); }

// Per-candidate cost: two integer modulo operations plus loop/add ALU work.

sim::SimTask sum35Thread(threadrt::ThreadContext& ctx, Sum35Params p,
                         std::uint64_t sum_addr) {
  const Slice s = blockSlice(p.limit, ctx.numThreads(), ctx.tid());
  long long sum = 0;
  for (std::size_t i = s.first; i < s.last; i += kChunk) {
    const std::size_t c = std::min(kChunk, s.last - i);
    sum += chunkSum(i, i + c);
    co_await ctx.computeOps(2 * c, sim::OpClass::IntDiv);
    co_await ctx.computeOps(2 * c, sim::OpClass::IntAlu);
  }
  co_await ctx.lockAcquire(kSumLock);
  long long global = 0;
  co_await ctx.memRead(sum_addr, &global, sizeof(global));
  global += sum;
  co_await ctx.memWrite(sum_addr, &global, sizeof(global));
  co_await ctx.lockRelease(kSumLock);
}

sim::SimTask sum35Rcce(sim::CoreContext& ctx, Sum35Params p,
                       rcce::ShmArray<long long> acc,
                       rcce::MpbArray<long long> mpb_acc, bool use_mpb) {
  const Slice s = blockSlice(p.limit, ctx.numUes(), ctx.ue());
  long long sum = 0;
  for (std::size_t i = s.first; i < s.last; i += kChunk) {
    const std::size_t c = std::min(kChunk, s.last - i);
    sum += chunkSum(i, i + c);
    co_await ctx.computeOps(2 * c, sim::OpClass::IntDiv);
    co_await ctx.computeOps(2 * c, sim::OpClass::IntAlu);
  }
  co_await ctx.lockAcquire(kSumLock);
  long long global = 0;
  if (use_mpb) {
    co_await mpb_acc.read(ctx, 0, 0, &global);
    global += sum;
    co_await mpb_acc.write(ctx, 0, 0, global);
  } else {
    co_await acc.read(ctx, 0, &global);
    global += sum;
    co_await acc.write(ctx, 0, global);
  }
  co_await ctx.lockRelease(kSumLock);
  co_await ctx.barrier();
}

class Sum35 final : public Benchmark {
 public:
  explicit Sum35(double scale) {
    params_.limit = static_cast<std::size_t>(static_cast<double>(params_.limit) * scale);
    if (params_.limit < 1000) params_.limit = 1000;
  }

  [[nodiscard]] std::string name() const override { return "3-5-Sum"; }

  // (No repeated default for plan: defaults on virtuals bind to the
  // static type — Benchmark::run's declaration owns it.)
  [[nodiscard]] RunResult run(Mode mode, int units, const sim::SccConfig& config,
                              const partition::ExecutionPlan* plan)
      const override {
    RunResult result;
    result.benchmark = name();
    result.mode = mode;
    result.units = units;
    const Sum35Params p = params_;

    long long computed = 0;
    if (mode == Mode::PthreadSingleCore) {
      threadrt::SingleCoreRuntime rt(config);
      const std::uint64_t sum_addr = 0;
      std::memset(rt.machine().privData(0, sum_addr), 0, sizeof(long long));
      rt.launch(units, [&](threadrt::ThreadContext& ctx) {
        return sum35Thread(ctx, p, sum_addr);
      });
      result.makespan = rt.run();
      std::memcpy(&computed, rt.machine().privData(0, sum_addr), sizeof(long long));
    } else {
      sim::SccMachine machine(config);
      rcce::RcceEnv env(machine);
      // "partial" is the source's per-thread slot array, gathered in main:
      // on-chip placement funnels the reduction through UE 0's slot.
      const bool use_mpb = partition::isOnChip(resolvePlacement(
          plan, "partial", mode, partition::PlacementClass::kOnChipResident));
      rcce::ShmArray<long long> acc = makeShmArray<long long>(
          env, 1, plan, "partial", mode, partition::PlacementClass::kOnChipResident);
      rcce::MpbArray<long long> mpb_acc(env, units, 1);
      *acc.hostData() = 0;
      *mpb_acc.hostData(0) = 0;
      machine.launch(sim::LaunchSpec(units, [&](sim::CoreContext& ctx) {
        return sum35Rcce(ctx, p, acc, mpb_acc, use_mpb);
      }).withPlan(plan));
      result.makespan = machine.run();
      recordMachineRobustness(result, machine);
      result.plan_regions_unrealized = countUnrealizedRegions(plan, {"partial"});
      computed = use_mpb ? *mpb_acc.hostData(0) : *acc.hostData();
    }

    result.verified = computed == referenceSum(p.limit);
    deriveDetail(result, "sum=" + std::to_string(computed));
    return result;
  }

 private:
  Sum35Params params_;
};

}  // namespace

std::unique_ptr<Benchmark> makeSum35(double scale) {
  return std::make_unique<Sum35>(scale);
}

}  // namespace hsm::workloads

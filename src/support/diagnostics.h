// Diagnostics engine shared by the lexer, parser, semantic analysis and the
// translation pipeline. Collects structured diagnostics instead of printing
// eagerly so that library users (tests, the translator facade, tools) decide
// how to render them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/source.h"

namespace hsm {

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;
};

class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message) {
    if (sev == Severity::Error) ++error_count_;
    diags_.push_back(Diagnostic{sev, loc, std::move(message)});
  }

  void error(SourceLoc loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void note(SourceLoc loc, std::string message) {
    report(Severity::Note, loc, std::move(message));
  }

  [[nodiscard]] bool hasErrors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t errorCount() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// Render all diagnostics as "file:line:col: severity: message" lines.
  [[nodiscard]] std::string format(const SourceBuffer& buffer) const;

  void clear() {
    diags_.clear();
    error_count_ = 0;
  }

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace hsm

#include "support/diagnostics.h"

#include <sstream>

namespace hsm {
namespace {

const char* severityName(Severity sev) {
  switch (sev) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}

}  // namespace

std::string DiagnosticEngine::format(const SourceBuffer& buffer) const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << buffer.name() << ':' << d.loc.line << ':' << d.loc.column << ": "
       << severityName(d.severity) << ": " << d.message << '\n';
  }
  return os.str();
}

}  // namespace hsm

// Source text management: buffers, locations, and ranges.
//
// Every token and AST node carries a SourceLoc so that diagnostics and the
// translation report can point back at the original Pthreads program, in the
// spirit of the CETUS IR the paper builds on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hsm {

/// A location inside a SourceBuffer. Lines and columns are 1-based;
/// offset is the 0-based byte offset into the buffer text.
struct SourceLoc {
  std::uint32_t offset = 0;
  std::uint32_t line = 0;  ///< 1-based; 0 means "unknown/synthesized".
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Half-open range [begin, end) over a single buffer.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;
};

/// An immutable, named piece of source text (a file or an in-memory string).
class SourceBuffer {
 public:
  SourceBuffer(std::string name, std::string text)
      : name_(std::move(name)), text_(std::move(text)) {
    indexLines();
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::string_view text() const { return text_; }
  [[nodiscard]] std::size_t size() const { return text_.size(); }

  /// Number of lines (a trailing newline does not start a new line).
  [[nodiscard]] std::uint32_t lineCount() const {
    return static_cast<std::uint32_t>(line_starts_.size());
  }

  /// Text of the 1-based line `line`, without the trailing newline.
  [[nodiscard]] std::string_view lineText(std::uint32_t line) const;

  /// Construct a full SourceLoc (line/column) from a byte offset.
  [[nodiscard]] SourceLoc locate(std::uint32_t offset) const;

 private:
  void indexLines();

  std::string name_;
  std::string text_;
  std::vector<std::uint32_t> line_starts_;  // offset of each line start
};

}  // namespace hsm

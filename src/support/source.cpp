#include "support/source.h"

#include <algorithm>

namespace hsm {

void SourceBuffer::indexLines() {
  line_starts_.clear();
  line_starts_.push_back(0);
  for (std::uint32_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n' && i + 1 < text_.size()) {
      line_starts_.push_back(i + 1);
    }
  }
}

std::string_view SourceBuffer::lineText(std::uint32_t line) const {
  if (line == 0 || line > line_starts_.size()) return {};
  const std::uint32_t start = line_starts_[line - 1];
  std::uint32_t end = start;
  while (end < text_.size() && text_[end] != '\n') ++end;
  return std::string_view(text_).substr(start, end - start);
}

SourceLoc SourceBuffer::locate(std::uint32_t offset) const {
  offset = std::min<std::uint32_t>(offset, static_cast<std::uint32_t>(text_.size()));
  // Find the last line start <= offset.
  const auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  const auto line_index = static_cast<std::uint32_t>(it - line_starts_.begin());  // 1-based
  const std::uint32_t line_start = line_starts_[line_index - 1];
  return SourceLoc{offset, line_index, offset - line_start + 1};
}

}  // namespace hsm

#include "codegen/c_emitter.h"

#include <sstream>
#include <vector>

namespace hsm::codegen {
namespace {

/// C operator precedence for printing (higher binds tighter).
int precedenceOf(ast::BinaryOp op) {
  using ast::BinaryOp;
  switch (op) {
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Rem: return 13;
    case BinaryOp::Add:
    case BinaryOp::Sub: return 12;
    case BinaryOp::Shl:
    case BinaryOp::Shr: return 11;
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge: return 10;
    case BinaryOp::Eq:
    case BinaryOp::Ne: return 9;
    case BinaryOp::BitAnd: return 8;
    case BinaryOp::BitXor: return 7;
    case BinaryOp::BitOr: return 6;
    case BinaryOp::LogicalAnd: return 5;
    case BinaryOp::LogicalOr: return 4;
    case BinaryOp::Assign:
    case BinaryOp::AddAssign:
    case BinaryOp::SubAssign:
    case BinaryOp::MulAssign:
    case BinaryOp::DivAssign:
    case BinaryOp::RemAssign:
    case BinaryOp::AndAssign:
    case BinaryOp::OrAssign:
    case BinaryOp::XorAssign:
    case BinaryOp::ShlAssign:
    case BinaryOp::ShrAssign: return 2;
    case BinaryOp::Comma: return 1;
  }
  return 0;
}

const char* spellingOf(ast::BinaryOp op) {
  using ast::BinaryOp;
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Rem: return "%";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
    case BinaryOp::LogicalAnd: return "&&";
    case BinaryOp::LogicalOr: return "||";
    case BinaryOp::Assign: return "=";
    case BinaryOp::AddAssign: return "+=";
    case BinaryOp::SubAssign: return "-=";
    case BinaryOp::MulAssign: return "*=";
    case BinaryOp::DivAssign: return "/=";
    case BinaryOp::RemAssign: return "%=";
    case BinaryOp::AndAssign: return "&=";
    case BinaryOp::OrAssign: return "|=";
    case BinaryOp::XorAssign: return "^=";
    case BinaryOp::ShlAssign: return "<<=";
    case BinaryOp::ShrAssign: return ">>=";
    case BinaryOp::Comma: return ",";
  }
  return "?";
}

const char* spellingOf(ast::UnaryOp op) {
  using ast::UnaryOp;
  switch (op) {
    case UnaryOp::Plus: return "+";
    case UnaryOp::Minus: return "-";
    case UnaryOp::LogicalNot: return "!";
    case UnaryOp::BitNot: return "~";
    case UnaryOp::Deref: return "*";
    case UnaryOp::AddrOf: return "&";
    case UnaryOp::PreInc:
    case UnaryOp::PostInc: return "++";
    case UnaryOp::PreDec:
    case UnaryOp::PostDec: return "--";
  }
  return "?";
}

constexpr int kUnaryPrecedence = 14;
constexpr int kPostfixPrecedence = 15;
constexpr int kPrimaryPrecedence = 16;
constexpr int kConditionalPrecedence = 3;

class ExprPrinter {
 public:
  explicit ExprPrinter(const CSourceEmitter& emitter) : emitter_(emitter) {}

  std::string print(const ast::Expr& expr) const { return printPrec(expr, 0); }

 private:
  /// Print `expr`, parenthesizing if its precedence is below `min_prec`.
  std::string printPrec(const ast::Expr& expr, int min_prec) const {
    int prec = kPrimaryPrecedence;
    const std::string text = render(expr, &prec);
    if (prec < min_prec) return "(" + text + ")";
    return text;
  }

  std::string render(const ast::Expr& expr, int* prec) const {
    using ast::ExprKind;
    switch (expr.kind()) {
      case ExprKind::IntLiteral:
        return static_cast<const ast::IntLiteralExpr&>(expr).spelling();
      case ExprKind::FloatLiteral:
        return static_cast<const ast::FloatLiteralExpr&>(expr).spelling();
      case ExprKind::CharLiteral:
        return static_cast<const ast::CharLiteralExpr&>(expr).spelling();
      case ExprKind::StringLiteral:
        return static_cast<const ast::StringLiteralExpr&>(expr).spelling();
      case ExprKind::DeclRef:
        return static_cast<const ast::DeclRefExpr&>(expr).name();
      case ExprKind::Unary: {
        const auto& unary = static_cast<const ast::UnaryExpr&>(expr);
        *prec = kUnaryPrecedence;
        if (unary.op() == ast::UnaryOp::PostInc || unary.op() == ast::UnaryOp::PostDec) {
          *prec = kPostfixPrecedence;
          return printPrec(*unary.operand(), kPostfixPrecedence) + spellingOf(unary.op());
        }
        // Guard `- -x` and `& &x` style juxtapositions with a space.
        const std::string operand = printPrec(*unary.operand(), kUnaryPrecedence);
        std::string op = spellingOf(unary.op());
        if (!operand.empty() && !op.empty() && operand.front() == op.back()) op += ' ';
        return op + operand;
      }
      case ExprKind::Binary: {
        const auto& binary = static_cast<const ast::BinaryExpr&>(expr);
        const int p = precedenceOf(binary.op());
        *prec = p;
        const bool right_assoc = ast::isAssignmentOp(binary.op());
        const std::string lhs = printPrec(*binary.lhs(), right_assoc ? p + 1 : p);
        const std::string rhs = printPrec(*binary.rhs(), right_assoc ? p : p + 1);
        if (binary.op() == ast::BinaryOp::Comma) return lhs + ", " + rhs;
        return lhs + " " + spellingOf(binary.op()) + " " + rhs;
      }
      case ExprKind::Conditional: {
        const auto& cond = static_cast<const ast::ConditionalExpr&>(expr);
        *prec = kConditionalPrecedence;
        return printPrec(*cond.cond(), kConditionalPrecedence + 1) + " ? " +
               printPrec(*cond.thenExpr(), 0) + " : " +
               printPrec(*cond.elseExpr(), kConditionalPrecedence);
      }
      case ExprKind::Call: {
        const auto& call = static_cast<const ast::CallExpr&>(expr);
        *prec = kPostfixPrecedence;
        std::string out = printPrec(*call.callee(), kPostfixPrecedence) + "(";
        for (std::size_t i = 0; i < call.args().size(); ++i) {
          if (i > 0) out += ", ";
          // Arguments are assignment-expressions: protect top-level commas.
          out += printPrec(*call.args()[i], 2);
        }
        return out + ")";
      }
      case ExprKind::Index: {
        const auto& index = static_cast<const ast::IndexExpr&>(expr);
        *prec = kPostfixPrecedence;
        return printPrec(*index.base(), kPostfixPrecedence) + "[" +
               printPrec(*index.index(), 0) + "]";
      }
      case ExprKind::Member: {
        const auto& member = static_cast<const ast::MemberExpr&>(expr);
        *prec = kPostfixPrecedence;
        return printPrec(*member.base(), kPostfixPrecedence) +
               (member.isArrow() ? "->" : ".") + member.member();
      }
      case ExprKind::Cast: {
        const auto& cast = static_cast<const ast::CastExpr&>(expr);
        *prec = kUnaryPrecedence;
        return "(" + cast.target()->spelling() + ")" +
               printPrec(*cast.operand(), kUnaryPrecedence);
      }
      case ExprKind::Sizeof: {
        const auto& size_of = static_cast<const ast::SizeofExpr&>(expr);
        *prec = kUnaryPrecedence;
        if (size_of.typeOperand() != nullptr) {
          return "sizeof(" + size_of.typeOperand()->spelling() + ")";
        }
        return "sizeof " + printPrec(*size_of.exprOperand(), kUnaryPrecedence);
      }
      case ExprKind::InitList: {
        const auto& init = static_cast<const ast::InitListExpr&>(expr);
        std::string out = "{";
        for (std::size_t i = 0; i < init.inits().size(); ++i) {
          if (i > 0) out += ", ";
          out += printPrec(*init.inits()[i], 2);
        }
        return out + "}";
      }
    }
    return "<expr>";
  }

  const CSourceEmitter& emitter_;
};

}  // namespace

std::string CSourceEmitter::emitDeclarator(const ast::Type* type,
                                           const std::string& name) const {
  if (type == nullptr) return name;
  // Peel array dimensions (outermost first).
  std::vector<std::size_t> dims;
  const ast::Type* t = type;
  while (t->isArray()) {
    dims.push_back(t->arrayLength());
    t = t->element();
  }
  std::string stars;
  while (t->isPointer()) {
    stars += '*';
    t = t->element();
  }
  std::string out = t->spelling();
  out += ' ';
  out += stars + name;
  for (std::size_t d : dims) out += "[" + std::to_string(d) + "]";
  return out;
}

std::string CSourceEmitter::emitExpr(const ast::Expr& expr) const {
  return ExprPrinter(*this).print(expr);
}

std::string CSourceEmitter::emitStmt(const ast::Stmt& stmt, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * options_.indent_width, ' ');
  std::ostringstream os;
  switch (stmt.kind()) {
    case ast::StmtKind::Compound: {
      const auto& compound = static_cast<const ast::CompoundStmt&>(stmt);
      os << pad << "{\n";
      for (const ast::Stmt* s : compound.body()) os << emitStmt(*s, indent + 1);
      os << pad << "}\n";
      break;
    }
    case ast::StmtKind::Decl: {
      const auto& decl_stmt = static_cast<const ast::DeclStmt&>(stmt);
      for (const ast::VarDecl* var : decl_stmt.decls()) {
        os << pad;
        if (var->storage() == ast::StorageClass::Static) os << "static ";
        if (var->storage() == ast::StorageClass::Extern) os << "extern ";
        os << emitDeclarator(var->type(), var->name());
        if (var->init() != nullptr) os << " = " << emitExpr(*var->init());
        os << ";\n";
      }
      break;
    }
    case ast::StmtKind::Expr:
      os << pad << emitExpr(*static_cast<const ast::ExprStmt&>(stmt).expr()) << ";\n";
      break;
    case ast::StmtKind::If: {
      const auto& if_stmt = static_cast<const ast::IfStmt&>(stmt);
      os << pad << "if (" << emitExpr(*if_stmt.cond()) << ")\n";
      os << emitStmt(*if_stmt.thenStmt(),
                     if_stmt.thenStmt()->kind() == ast::StmtKind::Compound ? indent
                                                                           : indent + 1);
      if (if_stmt.elseStmt() != nullptr) {
        os << pad << "else\n";
        os << emitStmt(*if_stmt.elseStmt(),
                       if_stmt.elseStmt()->kind() == ast::StmtKind::Compound ? indent
                                                                             : indent + 1);
      }
      break;
    }
    case ast::StmtKind::For: {
      const auto& for_stmt = static_cast<const ast::ForStmt&>(stmt);
      std::string init_text;
      if (for_stmt.init() != nullptr) {
        if (for_stmt.init()->kind() == ast::StmtKind::Expr) {
          init_text = emitExpr(*static_cast<const ast::ExprStmt*>(for_stmt.init())->expr());
        } else if (for_stmt.init()->kind() == ast::StmtKind::Decl) {
          // Inline single declaration: "int i = 0".
          std::string text = emitStmt(*for_stmt.init(), 0);
          while (!text.empty() && (text.back() == '\n' || text.back() == ';')) text.pop_back();
          init_text = text;
        }
      }
      os << pad << "for (" << init_text << "; "
         << (for_stmt.cond() != nullptr ? emitExpr(*for_stmt.cond()) : "") << "; "
         << (for_stmt.step() != nullptr ? emitExpr(*for_stmt.step()) : "") << ")\n";
      os << emitStmt(*for_stmt.body(),
                     for_stmt.body()->kind() == ast::StmtKind::Compound ? indent
                                                                        : indent + 1);
      break;
    }
    case ast::StmtKind::While: {
      const auto& while_stmt = static_cast<const ast::WhileStmt&>(stmt);
      os << pad << "while (" << emitExpr(*while_stmt.cond()) << ")\n";
      os << emitStmt(*while_stmt.body(),
                     while_stmt.body()->kind() == ast::StmtKind::Compound ? indent
                                                                          : indent + 1);
      break;
    }
    case ast::StmtKind::Do: {
      const auto& do_stmt = static_cast<const ast::DoStmt&>(stmt);
      os << pad << "do\n";
      os << emitStmt(*do_stmt.body(),
                     do_stmt.body()->kind() == ast::StmtKind::Compound ? indent : indent + 1);
      os << pad << "while (" << emitExpr(*do_stmt.cond()) << ");\n";
      break;
    }
    case ast::StmtKind::Return: {
      const auto& ret = static_cast<const ast::ReturnStmt&>(stmt);
      os << pad << "return";
      if (ret.value() != nullptr) os << " " << emitExpr(*ret.value());
      os << ";\n";
      break;
    }
    case ast::StmtKind::Break:
      os << pad << "break;\n";
      break;
    case ast::StmtKind::Continue:
      os << pad << "continue;\n";
      break;
    case ast::StmtKind::Null:
      os << pad << ";\n";
      break;
  }
  return os.str();
}

std::string CSourceEmitter::emit(const ast::TranslationUnit& unit) const {
  std::ostringstream os;
  for (const lex::Directive& d : unit.directives()) os << d.text << '\n';
  if (!unit.directives().empty()) os << '\n';

  for (const ast::TopLevel& tl : unit.topLevels()) {
    if (tl.kind == ast::TopLevel::Kind::Vars) {
      for (const ast::VarDecl* var : tl.vars) {
        if (var->storage() == ast::StorageClass::Static) os << "static ";
        if (var->storage() == ast::StorageClass::Extern) os << "extern ";
        os << emitDeclarator(var->type(), var->name());
        if (var->init() != nullptr) os << " = " << emitExpr(*var->init());
        os << ";\n";
      }
    } else if (tl.function != nullptr) {
      const ast::FunctionDecl& fn = *tl.function;
      os << '\n' << emitDeclarator(fn.returnType(), fn.name()) << "(";
      if (fn.params().empty()) {
        os << "void";
      } else {
        for (std::size_t i = 0; i < fn.params().size(); ++i) {
          if (i > 0) os << ", ";
          const ast::ParamDecl* p = fn.params()[i];
          os << emitDeclarator(p->type(), p->name());
        }
      }
      os << ")";
      if (fn.isDefinition()) {
        os << '\n' << emitStmt(*fn.body(), 0);
      } else {
        os << ";\n";
      }
    }
  }
  return os.str();
}

}  // namespace hsm::codegen

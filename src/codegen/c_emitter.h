// C source emission: turns the (possibly transformed) AST back into
// compilable C. Preprocessor directives captured by the lexer are re-emitted
// at the top of the file; expressions are printed with precedence-aware
// parenthesization.
#pragma once

#include <string>

#include "ast/context.h"

namespace hsm::codegen {

struct EmitOptions {
  int indent_width = 4;
};

class CSourceEmitter {
 public:
  explicit CSourceEmitter(EmitOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string emit(const ast::TranslationUnit& unit) const;
  [[nodiscard]] std::string emitExpr(const ast::Expr& expr) const;
  [[nodiscard]] std::string emitStmt(const ast::Stmt& stmt, int indent = 0) const;
  /// "int x", "int *p", "int a[3]", "double m[4][4]" — declarator form.
  [[nodiscard]] std::string emitDeclarator(const ast::Type* type,
                                           const std::string& name) const;

 private:
  EmitOptions options_;
};

}  // namespace hsm::codegen

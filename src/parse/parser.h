// Recursive-descent parser for the C subset the translator accepts:
// declarations (scalars, pointers, arrays, typedef-style named types such as
// pthread_t), function definitions, the full C expression grammar with
// correct precedence, casts, sizeof, and the structured statements used by
// Pthreads benchmarks (if/for/while/do/return/break/continue).
//
// The parser produces the AST owned by an ASTContext and performs no name
// resolution; that is sema's job.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "ast/context.h"
#include "lex/token.h"
#include "support/diagnostics.h"

namespace hsm::parse {

class Parser {
 public:
  Parser(std::vector<lex::Token> tokens, std::vector<lex::Directive> directives,
         ast::ASTContext& context, DiagnosticEngine& diags);

  /// Parse a whole translation unit into the context. Returns false if any
  /// parse error was reported.
  bool parseUnit();

  /// Register an identifier that should be treated as a type name
  /// (the moral equivalent of a typedef that came from an #include).
  void addTypeName(const std::string& name) { type_names_.insert(name); }

 private:
  using Token = lex::Token;
  using TokenKind = lex::TokenKind;

  // -- token stream helpers --
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  [[nodiscard]] bool check(TokenKind kind) const { return peek().kind == kind; }
  const Token& advance();
  bool match(TokenKind kind);
  const Token& expect(TokenKind kind, const char* what);
  [[nodiscard]] bool atEnd() const { return peek().is(TokenKind::Eof); }
  void synchronizeToSemicolon();

  // -- type & declarator parsing --
  [[nodiscard]] bool startsTypeSpecifier(std::size_t ahead = 0) const;
  const ast::Type* parseTypeSpecifier(ast::StorageClass* storage);
  struct Declarator {
    std::string name;
    const ast::Type* type = nullptr;
    SourceLoc loc;
    bool is_function = false;
    std::vector<ast::ParamDecl*> params;
  };
  Declarator parseDeclarator(const ast::Type* base);
  /// Parse an abstract type, e.g. inside a cast or sizeof: specifier + stars.
  const ast::Type* parseAbstractType();
  [[nodiscard]] bool looksLikeCast() const;

  // -- declarations --
  void parseTopLevel();
  ast::DeclStmt* parseLocalDeclaration();
  ast::VarDecl* finishVarDecl(const Declarator& d, ast::StorageClass storage, bool global);

  // -- statements --
  ast::Stmt* parseStatement();
  ast::CompoundStmt* parseCompound();
  ast::Stmt* parseIf();
  ast::Stmt* parseFor();
  ast::Stmt* parseWhile();
  ast::Stmt* parseDo();
  ast::Stmt* parseReturn();

  // -- expressions (precedence climbing) --
  ast::Expr* parseExpr();            // comma
  ast::Expr* parseAssignment();
  ast::Expr* parseConditional();
  ast::Expr* parseBinary(int min_precedence);
  ast::Expr* parseUnary();
  ast::Expr* parsePostfix();
  ast::Expr* parsePrimary();

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  ast::ASTContext& ctx_;
  DiagnosticEngine& diags_;
  std::unordered_set<std::string> type_names_;
  bool had_error_ = false;
};

/// Convenience: lex + parse a buffer into `context`.
/// Returns false on any lex or parse error.
bool parseSource(const SourceBuffer& buffer, ast::ASTContext& context,
                 DiagnosticEngine& diags);

}  // namespace hsm::parse

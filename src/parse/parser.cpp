#include "parse/parser.h"

#include <cstdlib>

#include "lex/lexer.h"

namespace hsm::parse {

using lex::Token;
using lex::TokenKind;

namespace {

/// Binary operator precedence (C levels, higher binds tighter).
/// Returns -1 for tokens that are not binary operators.
int binaryPrecedence(TokenKind kind) {
  switch (kind) {
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent: return 10;
    case TokenKind::Plus:
    case TokenKind::Minus: return 9;
    case TokenKind::LessLess:
    case TokenKind::GreaterGreater: return 8;
    case TokenKind::Less:
    case TokenKind::Greater:
    case TokenKind::LessEqual:
    case TokenKind::GreaterEqual: return 7;
    case TokenKind::EqualEqual:
    case TokenKind::BangEqual: return 6;
    case TokenKind::Amp: return 5;
    case TokenKind::Caret: return 4;
    case TokenKind::Pipe: return 3;
    case TokenKind::AmpAmp: return 2;
    case TokenKind::PipePipe: return 1;
    default: return -1;
  }
}

ast::BinaryOp binaryOpFor(TokenKind kind) {
  switch (kind) {
    case TokenKind::Star: return ast::BinaryOp::Mul;
    case TokenKind::Slash: return ast::BinaryOp::Div;
    case TokenKind::Percent: return ast::BinaryOp::Rem;
    case TokenKind::Plus: return ast::BinaryOp::Add;
    case TokenKind::Minus: return ast::BinaryOp::Sub;
    case TokenKind::LessLess: return ast::BinaryOp::Shl;
    case TokenKind::GreaterGreater: return ast::BinaryOp::Shr;
    case TokenKind::Less: return ast::BinaryOp::Lt;
    case TokenKind::Greater: return ast::BinaryOp::Gt;
    case TokenKind::LessEqual: return ast::BinaryOp::Le;
    case TokenKind::GreaterEqual: return ast::BinaryOp::Ge;
    case TokenKind::EqualEqual: return ast::BinaryOp::Eq;
    case TokenKind::BangEqual: return ast::BinaryOp::Ne;
    case TokenKind::Amp: return ast::BinaryOp::BitAnd;
    case TokenKind::Caret: return ast::BinaryOp::BitXor;
    case TokenKind::Pipe: return ast::BinaryOp::BitOr;
    case TokenKind::AmpAmp: return ast::BinaryOp::LogicalAnd;
    case TokenKind::PipePipe: return ast::BinaryOp::LogicalOr;
    default: return ast::BinaryOp::Add;  // unreachable by construction
  }
}

bool assignmentOpFor(TokenKind kind, ast::BinaryOp* out) {
  switch (kind) {
    case TokenKind::Assign: *out = ast::BinaryOp::Assign; return true;
    case TokenKind::PlusAssign: *out = ast::BinaryOp::AddAssign; return true;
    case TokenKind::MinusAssign: *out = ast::BinaryOp::SubAssign; return true;
    case TokenKind::StarAssign: *out = ast::BinaryOp::MulAssign; return true;
    case TokenKind::SlashAssign: *out = ast::BinaryOp::DivAssign; return true;
    case TokenKind::PercentAssign: *out = ast::BinaryOp::RemAssign; return true;
    case TokenKind::AmpAssign: *out = ast::BinaryOp::AndAssign; return true;
    case TokenKind::PipeAssign: *out = ast::BinaryOp::OrAssign; return true;
    case TokenKind::CaretAssign: *out = ast::BinaryOp::XorAssign; return true;
    case TokenKind::LessLessAssign: *out = ast::BinaryOp::ShlAssign; return true;
    case TokenKind::GreaterGreaterAssign: *out = ast::BinaryOp::ShrAssign; return true;
    default: return false;
  }
}

bool isBuiltinTypeKeyword(TokenKind kind) {
  switch (kind) {
    case TokenKind::KwVoid:
    case TokenKind::KwChar:
    case TokenKind::KwShort:
    case TokenKind::KwInt:
    case TokenKind::KwLong:
    case TokenKind::KwFloat:
    case TokenKind::KwDouble:
    case TokenKind::KwSigned:
    case TokenKind::KwUnsigned:
      return true;
    default:
      return false;
  }
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, std::vector<lex::Directive> directives,
               ast::ASTContext& context, DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), ctx_(context), diags_(diags) {
  ctx_.unit().directives() = std::move(directives);
  // Names that behave like typedefs in the benchmarks we accept. These come
  // from headers we do not preprocess (#includes are carried through).
  for (const char* name :
       {"pthread_t", "pthread_attr_t", "pthread_mutex_t", "pthread_mutexattr_t",
        "pthread_cond_t", "pthread_barrier_t", "size_t", "int8_t", "int16_t",
        "int32_t", "int64_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
        "RCCE_FLAG", "RCCE_COMM"}) {
    type_names_.insert(name);
  }
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& tok = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::match(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind kind, const char* what) {
  if (check(kind)) return advance();
  had_error_ = true;
  diags_.error(peek().loc, std::string("expected ") + what + " but found " +
                               lex::tokenKindName(peek().kind));
  return peek();
}

void Parser::synchronizeToSemicolon() {
  while (!atEnd() && !check(TokenKind::Semicolon) && !check(TokenKind::RBrace)) advance();
  match(TokenKind::Semicolon);
}

// ---------------------------------------------------------------------------
// Types & declarators
// ---------------------------------------------------------------------------

bool Parser::startsTypeSpecifier(std::size_t ahead) const {
  const Token& tok = peek(ahead);
  if (isBuiltinTypeKeyword(tok.kind)) return true;
  if (tok.isOneOf(TokenKind::KwConst, TokenKind::KwVolatile, TokenKind::KwStatic,
                  TokenKind::KwExtern, TokenKind::KwStruct)) {
    return true;
  }
  if (tok.is(TokenKind::Identifier)) {
    return type_names_.count(std::string(tok.text)) > 0;
  }
  return false;
}

const ast::Type* Parser::parseTypeSpecifier(ast::StorageClass* storage) {
  ast::TypeTable& types = ctx_.types();
  bool is_unsigned = false;
  bool saw_signedness = false;
  int long_count = 0;
  bool saw_short = false;
  const ast::Type* base = nullptr;

  for (;;) {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::KwConst:
      case TokenKind::KwVolatile:
        advance();  // qualifiers are accepted and dropped (not semantically used)
        continue;
      case TokenKind::KwStatic:
        if (storage != nullptr) *storage = ast::StorageClass::Static;
        advance();
        continue;
      case TokenKind::KwExtern:
        if (storage != nullptr) *storage = ast::StorageClass::Extern;
        advance();
        continue;
      case TokenKind::KwSigned:
        saw_signedness = true;
        advance();
        continue;
      case TokenKind::KwUnsigned:
        is_unsigned = true;
        saw_signedness = true;
        advance();
        continue;
      case TokenKind::KwShort:
        saw_short = true;
        advance();
        continue;
      case TokenKind::KwLong:
        ++long_count;
        advance();
        continue;
      case TokenKind::KwVoid:
        advance();
        base = types.builtin(ast::TypeKind::Void);
        continue;
      case TokenKind::KwChar:
        advance();
        base = types.builtin(is_unsigned ? ast::TypeKind::UnsignedChar : ast::TypeKind::Char);
        continue;
      case TokenKind::KwInt:
        advance();
        base = types.builtin(ast::TypeKind::Int);
        continue;
      case TokenKind::KwFloat:
        advance();
        base = types.builtin(ast::TypeKind::Float);
        continue;
      case TokenKind::KwDouble:
        advance();
        base = types.builtin(ast::TypeKind::Double);
        continue;
      case TokenKind::KwStruct: {
        advance();
        const Token& name = expect(TokenKind::Identifier, "struct name");
        base = types.named("struct " + std::string(name.text));
        continue;
      }
      case TokenKind::Identifier:
        if (base == nullptr && !saw_short && long_count == 0 && !saw_signedness &&
            type_names_.count(std::string(tok.text)) > 0) {
          base = types.named(std::string(tok.text));
          advance();
          continue;
        }
        break;
      default:
        break;
    }
    break;
  }

  if (base == nullptr || (base->kind() == ast::TypeKind::Int || base == nullptr)) {
    // Apply short/long/unsigned adjustments to an (implicit or explicit) int.
    if (saw_short) {
      return types.builtin(is_unsigned ? ast::TypeKind::UnsignedShort : ast::TypeKind::Short);
    }
    if (long_count > 0) {
      return types.builtin(is_unsigned ? ast::TypeKind::UnsignedLong : ast::TypeKind::Long);
    }
    if (base == nullptr) {
      if (saw_signedness) {
        return types.builtin(is_unsigned ? ast::TypeKind::UnsignedInt : ast::TypeKind::Int);
      }
      return nullptr;  // not a type specifier at all
    }
    if (is_unsigned && base->kind() == ast::TypeKind::Int) {
      return types.builtin(ast::TypeKind::UnsignedInt);
    }
  }
  return base;
}

Parser::Declarator Parser::parseDeclarator(const ast::Type* base) {
  Declarator d;
  const ast::Type* type = base;
  while (match(TokenKind::Star)) {
    type = ctx_.types().pointerTo(type);
    // Accept (and drop) qualifiers after '*'.
    while (match(TokenKind::KwConst) || match(TokenKind::KwVolatile)) {}
  }
  const Token& name = expect(TokenKind::Identifier, "declarator name");
  d.name = std::string(name.text);
  d.loc = name.loc;

  if (check(TokenKind::LParen)) {
    advance();
    d.is_function = true;
    if (!check(TokenKind::RParen)) {
      do {
        if (check(TokenKind::KwVoid) && peek(1).is(TokenKind::RParen)) {
          advance();  // (void) parameter list
          break;
        }
        if (match(TokenKind::Ellipsis)) break;
        ast::StorageClass param_storage = ast::StorageClass::None;
        const ast::Type* param_base = parseTypeSpecifier(&param_storage);
        if (param_base == nullptr) {
          had_error_ = true;
          diags_.error(peek().loc, "expected parameter type");
          synchronizeToSemicolon();
          break;
        }
        const ast::Type* param_type = param_base;
        while (match(TokenKind::Star)) param_type = ctx_.types().pointerTo(param_type);
        std::string param_name;
        SourceLoc param_loc = peek().loc;
        if (check(TokenKind::Identifier)) {
          const Token& pn = advance();
          param_name = std::string(pn.text);
          param_loc = pn.loc;
        }
        // Array parameter decays to pointer.
        while (match(TokenKind::LBracket)) {
          while (!check(TokenKind::RBracket) && !atEnd()) advance();
          expect(TokenKind::RBracket, "']'");
          param_type = ctx_.types().pointerTo(param_type);
        }
        auto* param = ctx_.makeDecl<ast::ParamDecl>(param_name, param_type, param_loc);
        d.params.push_back(param);
      } while (match(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "')'");
    d.type = type;  // return type for functions
    return d;
  }

  // Array suffixes (innermost dimension last in source, outermost first in type).
  std::vector<std::size_t> dims;
  while (match(TokenKind::LBracket)) {
    std::size_t length = 0;
    if (!check(TokenKind::RBracket)) {
      // Require an integer-constant dimension (sufficient for our subset).
      if (check(TokenKind::IntLiteral)) {
        length = static_cast<std::size_t>(std::strtoll(
            std::string(peek().text).c_str(), nullptr, 0));
        advance();
      } else {
        // Constant expression dimensions: evaluate simple N*M forms.
        ast::Expr* dim = parseConditional();
        (void)dim;
        had_error_ = true;
        diags_.error(peek().loc, "array dimension must be an integer literal");
      }
    }
    expect(TokenKind::RBracket, "']'");
    dims.push_back(length);
  }
  for (auto it = dims.rbegin(); it != dims.rend(); ++it) {
    type = ctx_.types().arrayOf(type, *it);
  }
  d.type = type;
  return d;
}

const ast::Type* Parser::parseAbstractType() {
  const ast::Type* base = parseTypeSpecifier(nullptr);
  if (base == nullptr) return nullptr;
  const ast::Type* type = base;
  while (match(TokenKind::Star)) type = ctx_.types().pointerTo(type);
  return type;
}

bool Parser::looksLikeCast() const {
  if (!check(TokenKind::LParen)) return false;
  if (!startsTypeSpecifier(1)) return false;
  // Scan forward over the type tokens to confirm `( type-stars )`.
  std::size_t i = 1;
  while (isBuiltinTypeKeyword(peek(i).kind) ||
         peek(i).isOneOf(TokenKind::KwConst, TokenKind::KwVolatile, TokenKind::KwStruct) ||
         (peek(i).is(TokenKind::Identifier) &&
          type_names_.count(std::string(peek(i).text)) > 0)) {
    ++i;
  }
  while (peek(i).is(TokenKind::Star)) ++i;
  return peek(i).is(TokenKind::RParen);
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

bool Parser::parseUnit() {
  while (!atEnd()) {
    parseTopLevel();
  }
  return !had_error_ && !diags_.hasErrors();
}

void Parser::parseTopLevel() {
  if (match(TokenKind::Semicolon)) return;  // stray semicolon

  if (check(TokenKind::KwTypedef)) {
    advance();
    const ast::Type* base = parseTypeSpecifier(nullptr);
    if (base == nullptr) {
      had_error_ = true;
      diags_.error(peek().loc, "expected type after 'typedef'");
      synchronizeToSemicolon();
      return;
    }
    Declarator d = parseDeclarator(base);
    type_names_.insert(d.name);
    expect(TokenKind::Semicolon, "';' after typedef");
    return;
  }

  ast::StorageClass storage = ast::StorageClass::None;
  const ast::Type* base = parseTypeSpecifier(&storage);
  if (base == nullptr) {
    had_error_ = true;
    diags_.error(peek().loc, std::string("expected a declaration, found ") +
                                 lex::tokenKindName(peek().kind));
    advance();
    return;
  }

  Declarator first = parseDeclarator(base);
  if (first.is_function) {
    auto* fn = ctx_.makeDecl<ast::FunctionDecl>(first.name, first.type, first.loc);
    fn->params() = first.params;
    if (check(TokenKind::LBrace)) {
      fn->setBody(parseCompound());
    } else {
      expect(TokenKind::Semicolon, "';' after function prototype");
    }
    ast::TopLevel tl;
    tl.kind = ast::TopLevel::Kind::Function;
    tl.function = fn;
    ctx_.unit().topLevels().push_back(tl);
    return;
  }

  ast::TopLevel tl;
  tl.kind = ast::TopLevel::Kind::Vars;
  tl.vars.push_back(finishVarDecl(first, storage, /*global=*/true));
  while (match(TokenKind::Comma)) {
    Declarator next = parseDeclarator(base);
    tl.vars.push_back(finishVarDecl(next, storage, /*global=*/true));
  }
  expect(TokenKind::Semicolon, "';' after declaration");
  ctx_.unit().topLevels().push_back(tl);
}

ast::VarDecl* Parser::finishVarDecl(const Declarator& d, ast::StorageClass storage,
                                    bool global) {
  auto* var = ctx_.makeDecl<ast::VarDecl>(d.name, d.type, d.loc);
  var->setStorage(storage);
  var->setGlobal(global);
  if (match(TokenKind::Assign)) {
    if (check(TokenKind::LBrace)) {
      const Token& brace = advance();
      std::vector<ast::Expr*> inits;
      if (!check(TokenKind::RBrace)) {
        do {
          inits.push_back(parseAssignment());
        } while (match(TokenKind::Comma) && !check(TokenKind::RBrace));
      }
      expect(TokenKind::RBrace, "'}'");
      var->setInit(ctx_.makeExpr<ast::InitListExpr>(std::move(inits), brace.loc));
    } else {
      var->setInit(parseAssignment());
    }
  }
  return var;
}

ast::DeclStmt* Parser::parseLocalDeclaration() {
  const SourceLoc loc = peek().loc;
  ast::StorageClass storage = ast::StorageClass::None;
  const ast::Type* base = parseTypeSpecifier(&storage);
  if (base == nullptr) {
    had_error_ = true;
    diags_.error(peek().loc, "expected type in declaration");
    synchronizeToSemicolon();
    return ctx_.makeStmt<ast::DeclStmt>(std::vector<ast::VarDecl*>{}, loc);
  }
  std::vector<ast::VarDecl*> vars;
  do {
    Declarator d = parseDeclarator(base);
    vars.push_back(finishVarDecl(d, storage, /*global=*/false));
  } while (match(TokenKind::Comma));
  expect(TokenKind::Semicolon, "';' after declaration");
  return ctx_.makeStmt<ast::DeclStmt>(std::move(vars), loc);
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

ast::CompoundStmt* Parser::parseCompound() {
  const Token& brace = expect(TokenKind::LBrace, "'{'");
  auto* compound = ctx_.makeStmt<ast::CompoundStmt>(brace.loc);
  while (!check(TokenKind::RBrace) && !atEnd()) {
    compound->append(parseStatement());
  }
  expect(TokenKind::RBrace, "'}'");
  return compound;
}

ast::Stmt* Parser::parseStatement() {
  switch (peek().kind) {
    case TokenKind::LBrace: return parseCompound();
    case TokenKind::KwIf: return parseIf();
    case TokenKind::KwFor: return parseFor();
    case TokenKind::KwWhile: return parseWhile();
    case TokenKind::KwDo: return parseDo();
    case TokenKind::KwReturn: return parseReturn();
    case TokenKind::KwBreak: {
      const Token& tok = advance();
      expect(TokenKind::Semicolon, "';' after 'break'");
      return ctx_.makeStmt<ast::BreakStmt>(tok.loc);
    }
    case TokenKind::KwContinue: {
      const Token& tok = advance();
      expect(TokenKind::Semicolon, "';' after 'continue'");
      return ctx_.makeStmt<ast::ContinueStmt>(tok.loc);
    }
    case TokenKind::Semicolon: {
      const Token& tok = advance();
      return ctx_.makeStmt<ast::NullStmt>(tok.loc);
    }
    default:
      break;
  }
  if (startsTypeSpecifier()) {
    // Disambiguate declarations from expressions beginning with a type name
    // used as a value (not possible in C, so a type start means declaration).
    return parseLocalDeclaration();
  }
  const SourceLoc loc = peek().loc;
  ast::Expr* e = parseExpr();
  expect(TokenKind::Semicolon, "';' after expression");
  return ctx_.makeStmt<ast::ExprStmt>(e, loc);
}

ast::Stmt* Parser::parseIf() {
  const Token& kw = expect(TokenKind::KwIf, "'if'");
  expect(TokenKind::LParen, "'('");
  ast::Expr* cond = parseExpr();
  expect(TokenKind::RParen, "')'");
  ast::Stmt* then_stmt = parseStatement();
  ast::Stmt* else_stmt = nullptr;
  if (match(TokenKind::KwElse)) else_stmt = parseStatement();
  return ctx_.makeStmt<ast::IfStmt>(cond, then_stmt, else_stmt, kw.loc);
}

ast::Stmt* Parser::parseFor() {
  const Token& kw = expect(TokenKind::KwFor, "'for'");
  expect(TokenKind::LParen, "'('");
  ast::Stmt* init = nullptr;
  if (check(TokenKind::Semicolon)) {
    const Token& semi = advance();
    init = ctx_.makeStmt<ast::NullStmt>(semi.loc);
  } else if (startsTypeSpecifier()) {
    init = parseLocalDeclaration();
  } else {
    const SourceLoc loc = peek().loc;
    ast::Expr* e = parseExpr();
    expect(TokenKind::Semicolon, "';' in for");
    init = ctx_.makeStmt<ast::ExprStmt>(e, loc);
  }
  ast::Expr* cond = nullptr;
  if (!check(TokenKind::Semicolon)) cond = parseExpr();
  expect(TokenKind::Semicolon, "';' in for");
  ast::Expr* step = nullptr;
  if (!check(TokenKind::RParen)) step = parseExpr();
  expect(TokenKind::RParen, "')'");
  ast::Stmt* body = parseStatement();
  return ctx_.makeStmt<ast::ForStmt>(init, cond, step, body, kw.loc);
}

ast::Stmt* Parser::parseWhile() {
  const Token& kw = expect(TokenKind::KwWhile, "'while'");
  expect(TokenKind::LParen, "'('");
  ast::Expr* cond = parseExpr();
  expect(TokenKind::RParen, "')'");
  ast::Stmt* body = parseStatement();
  return ctx_.makeStmt<ast::WhileStmt>(cond, body, kw.loc);
}

ast::Stmt* Parser::parseDo() {
  const Token& kw = expect(TokenKind::KwDo, "'do'");
  ast::Stmt* body = parseStatement();
  expect(TokenKind::KwWhile, "'while' after do body");
  expect(TokenKind::LParen, "'('");
  ast::Expr* cond = parseExpr();
  expect(TokenKind::RParen, "')'");
  expect(TokenKind::Semicolon, "';' after do-while");
  return ctx_.makeStmt<ast::DoStmt>(body, cond, kw.loc);
}

ast::Stmt* Parser::parseReturn() {
  const Token& kw = expect(TokenKind::KwReturn, "'return'");
  ast::Expr* value = nullptr;
  if (!check(TokenKind::Semicolon)) value = parseExpr();
  expect(TokenKind::Semicolon, "';' after return");
  return ctx_.makeStmt<ast::ReturnStmt>(value, kw.loc);
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ast::Expr* Parser::parseExpr() {
  ast::Expr* e = parseAssignment();
  while (check(TokenKind::Comma)) {
    const Token& comma = advance();
    ast::Expr* rhs = parseAssignment();
    e = ctx_.makeExpr<ast::BinaryExpr>(ast::BinaryOp::Comma, e, rhs, comma.loc);
  }
  return e;
}

ast::Expr* Parser::parseAssignment() {
  ast::Expr* lhs = parseConditional();
  ast::BinaryOp op;
  if (assignmentOpFor(peek().kind, &op)) {
    const Token& tok = advance();
    ast::Expr* rhs = parseAssignment();  // right associative
    return ctx_.makeExpr<ast::BinaryExpr>(op, lhs, rhs, tok.loc);
  }
  return lhs;
}

ast::Expr* Parser::parseConditional() {
  ast::Expr* cond = parseBinary(1);
  if (check(TokenKind::Question)) {
    const Token& q = advance();
    ast::Expr* then_expr = parseExpr();
    expect(TokenKind::Colon, "':' in conditional");
    ast::Expr* else_expr = parseConditional();
    return ctx_.makeExpr<ast::ConditionalExpr>(cond, then_expr, else_expr, q.loc);
  }
  return cond;
}

ast::Expr* Parser::parseBinary(int min_precedence) {
  ast::Expr* lhs = parseUnary();
  for (;;) {
    const int prec = binaryPrecedence(peek().kind);
    if (prec < min_precedence) return lhs;
    const Token& op_tok = advance();
    ast::Expr* rhs = parseBinary(prec + 1);  // all these operators are left associative
    lhs = ctx_.makeExpr<ast::BinaryExpr>(binaryOpFor(op_tok.kind), lhs, rhs, op_tok.loc);
  }
}

ast::Expr* Parser::parseUnary() {
  const Token& tok = peek();
  switch (tok.kind) {
    case TokenKind::Plus:
      advance();
      return ctx_.makeExpr<ast::UnaryExpr>(ast::UnaryOp::Plus, parseUnary(), tok.loc);
    case TokenKind::Minus:
      advance();
      return ctx_.makeExpr<ast::UnaryExpr>(ast::UnaryOp::Minus, parseUnary(), tok.loc);
    case TokenKind::Bang:
      advance();
      return ctx_.makeExpr<ast::UnaryExpr>(ast::UnaryOp::LogicalNot, parseUnary(), tok.loc);
    case TokenKind::Tilde:
      advance();
      return ctx_.makeExpr<ast::UnaryExpr>(ast::UnaryOp::BitNot, parseUnary(), tok.loc);
    case TokenKind::Star:
      advance();
      return ctx_.makeExpr<ast::UnaryExpr>(ast::UnaryOp::Deref, parseUnary(), tok.loc);
    case TokenKind::Amp:
      advance();
      return ctx_.makeExpr<ast::UnaryExpr>(ast::UnaryOp::AddrOf, parseUnary(), tok.loc);
    case TokenKind::PlusPlus:
      advance();
      return ctx_.makeExpr<ast::UnaryExpr>(ast::UnaryOp::PreInc, parseUnary(), tok.loc);
    case TokenKind::MinusMinus:
      advance();
      return ctx_.makeExpr<ast::UnaryExpr>(ast::UnaryOp::PreDec, parseUnary(), tok.loc);
    case TokenKind::KwSizeof: {
      advance();
      if (check(TokenKind::LParen) && startsTypeSpecifier(1)) {
        advance();
        const ast::Type* type = parseAbstractType();
        expect(TokenKind::RParen, "')'");
        return ctx_.makeExpr<ast::SizeofExpr>(type, tok.loc);
      }
      return ctx_.makeExpr<ast::SizeofExpr>(parseUnary(), tok.loc);
    }
    case TokenKind::LParen:
      if (looksLikeCast()) {
        advance();
        const ast::Type* type = parseAbstractType();
        expect(TokenKind::RParen, "')' after cast type");
        ast::Expr* operand = parseUnary();
        return ctx_.makeExpr<ast::CastExpr>(type, operand, tok.loc);
      }
      break;
    default:
      break;
  }
  return parsePostfix();
}

ast::Expr* Parser::parsePostfix() {
  ast::Expr* e = parsePrimary();
  for (;;) {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::LParen: {
        advance();
        std::vector<ast::Expr*> args;
        if (!check(TokenKind::RParen)) {
          do {
            args.push_back(parseAssignment());
          } while (match(TokenKind::Comma));
        }
        expect(TokenKind::RParen, "')' after call arguments");
        e = ctx_.makeExpr<ast::CallExpr>(e, std::move(args), tok.loc);
        break;
      }
      case TokenKind::LBracket: {
        advance();
        ast::Expr* index = parseExpr();
        expect(TokenKind::RBracket, "']'");
        e = ctx_.makeExpr<ast::IndexExpr>(e, index, tok.loc);
        break;
      }
      case TokenKind::Dot: {
        advance();
        const Token& member = expect(TokenKind::Identifier, "member name");
        e = ctx_.makeExpr<ast::MemberExpr>(e, std::string(member.text), false, tok.loc);
        break;
      }
      case TokenKind::Arrow: {
        advance();
        const Token& member = expect(TokenKind::Identifier, "member name");
        e = ctx_.makeExpr<ast::MemberExpr>(e, std::string(member.text), true, tok.loc);
        break;
      }
      case TokenKind::PlusPlus:
        advance();
        e = ctx_.makeExpr<ast::UnaryExpr>(ast::UnaryOp::PostInc, e, tok.loc);
        break;
      case TokenKind::MinusMinus:
        advance();
        e = ctx_.makeExpr<ast::UnaryExpr>(ast::UnaryOp::PostDec, e, tok.loc);
        break;
      default:
        return e;
    }
  }
}

ast::Expr* Parser::parsePrimary() {
  const Token& tok = peek();
  switch (tok.kind) {
    case TokenKind::IntLiteral: {
      advance();
      const std::string spelling(tok.text);
      const long long value = std::strtoll(spelling.c_str(), nullptr, 0);
      return ctx_.makeExpr<ast::IntLiteralExpr>(value, spelling, tok.loc);
    }
    case TokenKind::FloatLiteral: {
      advance();
      const std::string spelling(tok.text);
      const double value = std::strtod(spelling.c_str(), nullptr);
      return ctx_.makeExpr<ast::FloatLiteralExpr>(value, spelling, tok.loc);
    }
    case TokenKind::CharLiteral:
      advance();
      return ctx_.makeExpr<ast::CharLiteralExpr>(std::string(tok.text), tok.loc);
    case TokenKind::StringLiteral: {
      advance();
      std::string spelling(tok.text);
      // Adjacent string literal concatenation.
      while (check(TokenKind::StringLiteral)) {
        const Token& next = advance();
        spelling.pop_back();  // remove closing quote
        spelling += std::string(next.text).substr(1);
      }
      return ctx_.makeExpr<ast::StringLiteralExpr>(std::move(spelling), tok.loc);
    }
    case TokenKind::Identifier:
      advance();
      return ctx_.makeExpr<ast::DeclRefExpr>(std::string(tok.text), tok.loc);
    case TokenKind::LParen: {
      advance();
      ast::Expr* e = parseExpr();
      expect(TokenKind::RParen, "')'");
      return e;
    }
    default:
      had_error_ = true;
      diags_.error(tok.loc, std::string("expected an expression, found ") +
                                lex::tokenKindName(tok.kind));
      advance();
      return ctx_.makeExpr<ast::IntLiteralExpr>(0, "0", tok.loc);
  }
}

bool parseSource(const SourceBuffer& buffer, ast::ASTContext& context,
                 DiagnosticEngine& diags) {
  lex::Lexer lexer(buffer, diags);
  lex::LexResult lexed = lexer.lexAll();
  if (diags.hasErrors()) return false;
  Parser parser(std::move(lexed.tokens), std::move(lexed.directives), context, diags);
  return parser.parseUnit();
}

}  // namespace hsm::parse

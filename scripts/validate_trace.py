#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by the simulator.

CI runs this against the artifact micro_sim writes via --trace-out, so a
malformed exporter fails the build instead of silently producing a file
Perfetto cannot open. Checks (stdlib only):

  * top-level shape: {"displayTimeUnit": "ns", "traceEvents": [...]}
  * every event has ph/pid/tid, and ph is one of M/X/i/b/e/C
  * the three process groups (pid 1 UEs, pid 2 lanes, pid 3 controllers)
    have process_name metadata, and every (pid, tid) that carries events
    has thread_name metadata
  * X spans have non-negative dur; all timestamps are non-negative ints
    (simulated Ticks, never host time — host time is not deterministic)
  * per (pid, tid) track, events are sorted by ts (the exporter merges
    per-task buffers deterministically; out-of-order output would mean
    the merge broke)
  * b/e async pairs on pid 2 balance per (tid, id)
  * C counter events carry a numeric args value

Exit 0 on success, 1 with a message on the first violation.

Usage: validate_trace.py TRACE.json
"""

import json
import sys
from collections import defaultdict

VALID_PH = {"M", "X", "i", "b", "e", "C"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_trace.py TRACE.json")
    try:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot parse {sys.argv[1]}: {exc}")

    if doc.get("displayTimeUnit") != "ns":
        fail("displayTimeUnit must be 'ns'")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    process_names = {}
    thread_names = set()
    last_ts = {}
    async_depth = defaultdict(int)
    data_events = 0

    for idx, ev in enumerate(events):
        where = f"traceEvents[{idx}]"
        ph = ev.get("ph")
        if ph not in VALID_PH:
            fail(f"{where}: bad ph {ph!r}")
        pid, tid = ev.get("pid"), ev.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            fail(f"{where}: pid/tid must be ints")

        if ph == "M":
            kind = ev.get("name")
            args = ev.get("args", {})
            if kind == "process_name":
                process_names[pid] = args.get("name")
            elif kind == "thread_name":
                thread_names.add((pid, tid))
            else:
                fail(f"{where}: unknown metadata {kind!r}")
            continue

        data_events += 1
        ts = ev.get("ts")
        if not isinstance(ts, int) or ts < 0:
            fail(f"{where}: ts must be a non-negative int (simulated Ticks)")
        if not ev.get("name"):
            fail(f"{where}: data event missing name")
        if (pid, tid) not in thread_names:
            fail(f"{where}: events on unnamed track pid={pid} tid={tid}")
        track = (pid, tid)
        if ts < last_ts.get(track, 0):
            fail(f"{where}: ts {ts} goes backwards on track pid={pid} tid={tid}")
        last_ts[track] = ts

        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                fail(f"{where}: X span needs non-negative int dur")
        elif ph in ("b", "e"):
            key = (pid, tid, ev.get("id"))
            async_depth[key] += 1 if ph == "b" else -1
            if async_depth[key] < 0:
                fail(f"{where}: async 'e' without matching 'b' for id {ev.get('id')!r}")
        elif ph == "C":
            args = ev.get("args", {})
            if not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                fail(f"{where}: C counter needs numeric args")

    for pid in (1, 2, 3):
        if pid not in process_names:
            fail(f"missing process_name metadata for pid {pid}")
    for key, depth in async_depth.items():
        if depth != 0:
            fail(f"unbalanced async span on pid={key[0]} tid={key[1]} id={key[2]}")
    if data_events == 0:
        fail("trace contains metadata only, no data events")

    print(
        f"validate_trace: OK: {data_events} events on {len(last_ts)} tracks, "
        f"{len(process_names)} process groups"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Gate the micro_sim bench trajectory: BENCH_pr.json vs BENCH_baseline.json.

Fails (exit 1) when:
  * any Tick equivalence check in the PR run is violated (this includes the
    ExecutionPlan-driven twins: plan-launched runs must match the
    legacy-knob Ticks bit for bit),
  * any swcache check (DRF functional identity across cached/uncached
    routings, the read-mostly hit-rate bar) in the PR run is violated,
  * any mixed-policy check is violated (mixed_policy_8ue: the per-region
    plan must beat both machine-wide cacheability settings on simulated
    words per simulated second, with bit-identical functional results and
    zero MPB scope violations),
  * any parallel-lane check is violated (parallel_checks_ok: every
    scenario's engine_lanes=4 twin must reproduce the sequential run's
    makespan, completions, and extracted memory bit for bit), or a sharded
    run's lane utilization collapses (a lane's event share falling below
    half of an even split means the partition degenerated),
  * any observability check is violated (obs_checks_ok: a traced run must
    export byte-identical Chrome JSON across coalescing modes and across
    engine_lanes=1/4, and enabling the trace must not move a single Tick
    of the barrier_32ue run),
  * any KV Zipf check is violated (kv_zipf_8ue: both placement plans must
    verify against the host replay and the striped plan must hot-spot one
    controller while owner-compute stays flat), or the deterministic
    controller_load_cv values shift against the baseline (striped must not
    fall, placed must not rise),
  * a scenario present in the baseline is missing from the PR run,
  * simulator throughput of a scenario's coalesced run regresses more than
    the tolerance (default 15%, override with --tolerance) after normalizing
    for overall machine speed,
  * the coalescing rate of a scenario's coalesced run drops below the
    baseline (beyond a small float-formatting epsilon),
  * the swcache hit rate of a scenario's coalesced run drops below the
    baseline (same epsilon) — both rates are deterministic, so any drop is
    a code change, not noise.

Scenarios present only in the PR run are reported as "new" (not failures):
a PR may add scenarios without regenerating the committed baseline, which
should then be refreshed in a follow-up so they join the gated trajectory.

Throughput metric: shm_words_per_sec for word-granular scenarios (simulated
shared words — uncached transactions plus words served through the swcache —
per host second: invariant to how many engine events that work costs, so
better coalescing or caching cannot read as a regression the way raw
events/sec would), mpb_chunks_per_sec for MPB-chunk scenarios without word
traffic, events_per_sec for substrate scenarios with neither.

The committed baseline was measured on one machine and CI runs on another,
so raw events/sec comparisons would gate on hardware, not code. To separate
the two, the PR/baseline throughput ratios are normalized by their geometric
mean across all scenarios: a uniformly slower (or faster) machine moves every
ratio and cancels out, while a single scenario regressing relative to its
peers is exactly what survives the normalization. The committed baseline
should be regenerated (./build/bench/micro_sim > BENCH_baseline.json)
whenever a PR intentionally shifts the trajectory, making the shift
reviewable in the diff.
"""

import argparse
import json
import math
import sys

RATE_EPSILON = 0.005  # coalescing_rate is emitted with 4 decimals


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_baseline.json")
    parser.add_argument("pr", help="freshly generated BENCH_pr.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional events/sec regression (default 0.15)",
    )
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    with open(args.pr, encoding="utf-8") as f:
        pr = json.load(f)

    failures = []

    if not pr.get("ticks_identical_all", False):
        failures.append(
            "ticks_identical_all is false: coalescing produced diverging Ticks"
        )
    # Absent in pre-swcache result files; present files must pass.
    if not pr.get("swcache_checks_ok", True):
        failures.append(
            "swcache_checks_ok is false: DRF functional identity or the "
            "read-mostly hit-rate bar was violated"
        )
    # Absent in pre-ExecutionPlan result files; present files must pass.
    if not pr.get("policy_checks_ok", True):
        failures.append(
            "policy_checks_ok is false: the mixed per-region plan no longer "
            "beats both machine-wide cacheability settings (or its "
            "functional/hit-rate/scope checks failed)"
        )
    # Absent in pre-fault-injection result files; present files must pass.
    if not pr.get("fault_checks_ok", True):
        failures.append(
            "fault_checks_ok is false: zero-rate bit-identity, fault "
            "recovery, same-seed replay, the deadlock report, or the sync "
            "timeout check failed (see fault_sweep_8ue in BENCH_pr.json)"
        )
    # Absent in pre-PDES-lane result files; present files must pass.
    if not pr.get("parallel_checks_ok", True):
        failures.append(
            "parallel_checks_ok is false: an engine_lanes=4 twin diverged "
            "from its sequential run (makespan, completions, or extracted "
            "memory — see the parallel runs in BENCH_pr.json)"
        )
    # Lane utilization of every sharded parallel run: the partition is
    # deterministic, so a lane's event share collapsing below half of an
    # even split is a lane-assignment code change, not noise.
    for scenario in pr.get("scenarios", []):
        par = scenario.get("parallel")
        if not isinstance(par, dict):
            continue
        lanes_used = par.get("lanes_used", 1)
        util = par.get("lane_utilization")
        if lanes_used <= 1 or not isinstance(util, dict):
            continue
        min_share = util.get("min_share", 0.0)
        floor_share = 0.5 / lanes_used
        if min_share < floor_share:
            failures.append(
                f"{scenario['name']}: lane utilization collapsed — min lane "
                f"share {min_share:.4f} below {floor_share:.4f} "
                f"(half of an even split across {lanes_used} lanes)"
            )
        else:
            print(
                f"ok {scenario['name']}: {lanes_used} lanes, min lane share "
                f"{min_share:.4f} (floor {floor_share:.4f})"
            )
    # Absent in pre-observability result files; present files must pass.
    if not pr.get("obs_checks_ok", True):
        failures.append(
            "obs_checks_ok is false: a traced run's export diverged across "
            "coalescing modes or engine lanes, or enabling the trace moved "
            "a Tick (see docs/observability.md for the contract)"
        )
    # Enabled-trace wall cost on barrier_32ue (traced wall / untraced wall):
    # tracked, not hard-gated — wall ratios are noisy across machines, so
    # only a blow-up beyond 4x (baseline ~2x) is treated as a recorder
    # regression rather than jitter.
    pr_overhead = pr.get("trace_overhead_barrier_32ue", 0.0)
    if pr_overhead > 4.0:
        failures.append(
            f"trace_overhead_barrier_32ue blew up to {pr_overhead:.2f}x "
            "(traced wall / untraced wall; expected around 2x)"
        )
    elif pr_overhead > 0.0:
        print(f"ok trace_overhead_barrier_32ue {pr_overhead:.2f}x (soft cap 4x)")
    # Absent in pre-KV result files; present files must pass.
    if not pr.get("kv_checks_ok", True):
        failures.append(
            "kv_checks_ok is false: the KV Zipf A/B lost its verification, "
            "its harness/Benchmark makespan agreement, or the striped-vs-"
            "placed controller_load_cv separation (see kv_zipf_8ue in "
            "BENCH_pr.json)"
        )
    # Absent in pre-DRF result files; present files must pass.
    if not pr.get("drf_checks_ok", True):
        failures.append(
            "drf_checks_ok is false: the race detector missed a seeded racy/"
            "false-sharing scenario, its reports diverged across engine lanes "
            "or coalescing modes, drf_check=true moved a Tick, or a paper "
            "benchmark stopped running detector-clean (see the drf_* "
            "scenarios in BENCH_pr.json and docs/race_detection.md)"
        )
    # Controller-load spread of the KV Zipf A/B: deterministic, so any shift
    # beyond the formatting epsilon is a routing/accounting code change. The
    # striped run must keep hot-spotting (CV must not fall) and the placed
    # run must stay flat (CV must not rise).
    for key, must_not in (
        ("controller_load_cv_striped", "fall"),
        ("controller_load_cv_placed", "rise"),
    ):
        base_cv = baseline.get(key)
        pr_cv = pr.get(key)
        if base_cv is None or pr_cv is None:
            continue
        fell = pr_cv < base_cv - RATE_EPSILON
        rose = pr_cv > base_cv + RATE_EPSILON
        if (must_not == "fall" and fell) or (must_not == "rise" and rose):
            failures.append(f"{key} shifted {base_cv:.4f} -> {pr_cv:.4f}")
        else:
            print(f"ok {key} {base_cv:.4f} -> {pr_cv:.4f}")
    # Retry-success rate of the seeded fault sweep: deterministic, so any
    # drop below the baseline is a recovery-layer code change, not noise.
    base_recovery = baseline.get("fault_recovery_rate")
    pr_recovery = pr.get("fault_recovery_rate")
    if base_recovery is not None and pr_recovery is not None:
        if pr_recovery < base_recovery - RATE_EPSILON:
            failures.append(
                f"fault_recovery_rate dropped {base_recovery:.4f} -> "
                f"{pr_recovery:.4f}"
            )
        else:
            print(
                f"ok fault_recovery_rate {base_recovery:.4f} -> {pr_recovery:.4f}"
            )

    def throughput(run):
        """(metric name, value): simulated-work/sec if any, else events/sec."""
        if run.get("shm_words", 0) > 0:
            return "shm_words_per_sec", run["shm_words_per_sec"]
        if run.get("mpb_chunks", 0) > 0:
            return "mpb_chunks_per_sec", run["mpb_chunks_per_sec"]
        return "events_per_sec", run["events_per_sec"]

    pr_scenarios = {s["name"]: s for s in pr.get("scenarios", [])}
    baseline_names = {s["name"] for s in baseline.get("scenarios", [])}
    pairs = []
    for base_scenario in baseline.get("scenarios", []):
        name = base_scenario["name"]
        pr_scenario = pr_scenarios.get(name)
        if pr_scenario is None:
            failures.append(f"{name}: scenario missing from PR run")
            continue
        # Check-only scenarios (fault_sweep_8ue) carry flags, not timed runs;
        # they are gated via fault_checks_ok / fault_recovery_rate above.
        if "coalesced" not in base_scenario or "coalesced" not in pr_scenario:
            continue
        pairs.append((name, base_scenario["coalesced"], pr_scenario["coalesced"]))

    for name, pr_scenario in pr_scenarios.items():
        if name in baseline_names or "coalesced" not in pr_scenario:
            continue
        metric, value = throughput(pr_scenario["coalesced"])
        rate = pr_scenario["coalesced"].get("coalescing_rate", 0.0)
        print(
            f"new {name}: {metric} {value:.0f}, coalescing rate {rate:.4f} "
            "(not in baseline, not gated — regenerate BENCH_baseline.json "
            "to track it)"
        )

    ratios = []
    for _, base_run, pr_run in pairs:
        _, base_value = throughput(base_run)
        _, pr_value = throughput(pr_run)
        if base_value > 0 and pr_value > 0:
            ratios.append(pr_value / base_value)
    machine_speed = (
        math.exp(sum(math.log(r) for r in ratios) / len(ratios)) if ratios else 1.0
    )
    print(f"machine speed vs baseline (geomean of ratios): {machine_speed:.3f}")

    for name, base_run, pr_run in pairs:
        metric, base_value = throughput(base_run)
        _, pr_value = throughput(pr_run)
        normalized = pr_value / machine_speed if machine_speed > 0 else pr_value
        floor = (1.0 - args.tolerance) * base_value
        if normalized < floor:
            failures.append(
                f"{name}: {metric} regressed {base_value:.0f} -> {pr_value:.0f} "
                f"({normalized:.0f} machine-normalized, floor {floor:.0f}, "
                f"tolerance {args.tolerance:.0%})"
            )

        base_rate = base_run.get("coalescing_rate", 0.0)
        pr_rate = pr_run.get("coalescing_rate", 0.0)
        if pr_rate < base_rate - RATE_EPSILON:
            failures.append(
                f"{name}: coalescing rate dropped {base_rate:.4f} -> {pr_rate:.4f}"
            )

        hit_note = ""
        base_hit = base_run.get("swcache_hit_rate", 0.0)
        pr_hit = pr_run.get("swcache_hit_rate", 0.0)
        if base_hit > 0.0:
            if pr_hit < base_hit - RATE_EPSILON:
                failures.append(
                    f"{name}: swcache hit rate dropped {base_hit:.4f} -> {pr_hit:.4f}"
                )
            hit_note = f", swcache hit rate {base_hit:.4f} -> {pr_hit:.4f}"

        print(
            f"ok {name}: {metric} {base_value:.0f} -> {pr_value:.0f} "
            f"({normalized:.0f} normalized), "
            f"coalescing rate {base_rate:.4f} -> {pr_rate:.4f}" + hit_note
        )

    if failures:
        print("\nBENCH trajectory check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nBENCH trajectory check passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

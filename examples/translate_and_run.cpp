// End-to-end workflow on one benchmark: take the Pthreads C source of the
// Stream benchmark (paper Algorithms 13–16), run it through the
// source-to-source translator, show the generated RCCE program, and then
// execute the simulator twin of the same workload in all three
// configurations (the paper's Figs. 6.1/6.2 data points for Stream).
//
// The translator's stage-4 memory plan also yields the workload's MPB
// communication scope: on-chip placements are realized as symmetric per-UE
// slice allocations that each UE stages through locally, and reductions
// funnel through UE 0's slot. That scope is passed to launch(), giving the
// translated workload tight per-port engine reach sets (port-isolated
// coalescing) for free; any access outside the promise is counted and fails
// this example.
#include <cstdio>
#include <vector>

#include "translator/translator.h"
#include "workloads/benchmark.h"

int main() {
  using namespace hsm;

  // 1. Translate the Pthreads source.
  const std::string& source = workloads::pthreadSource("Stream");
  translator::Translator translator;
  const translator::TranslationResult result = translator.translate(source, "stream.c");
  if (!result.ok) {
    std::printf("translation failed:\n%s\n", result.diagnostics.c_str());
    return 1;
  }
  std::printf("=== Stage 1-3 analysis: shared data in stream.c ===\n");
  for (const auto* v : result.analysis.sharedVariables()) {
    std::printf("  %-8s %6zu bytes, ~%.0f accesses\n", v->name.c_str(), v->byte_size,
                v->totalWeightedAccesses());
  }
  std::printf("\n=== Stage 4 memory plan ===\n%s\n", result.plan.format().c_str());
  std::printf("=== Translated RCCE source ===\n%s\n", result.output_source.c_str());

  // 2. Derive the MPB scope from the stage-4 plan: every UE touches its own
  // symmetric slice (on-chip staging) plus UE 0's (reduction root). The
  // declared set is a promise the engine's per-port reach isolation relies
  // on — violations below void it and fail the example.
  const sim::SccMachine::MpbScope scope = [](int ue, int /*num_ues*/) {
    return std::vector<int>{ue, 0};
  };
  std::printf("=== MPB scope from stage-4 plan: {ue, 0} per UE (%zu B on-chip) ===\n",
              result.plan.onchip_used);

  // 3. Execute the workload on the simulated SCC in all three modes. A
  // failed verification (or a scope violation) fails the process, so CI
  // smoke-running this binary gates the whole translator→simulator pipeline
  // including the plan-derived port isolation.
  const sim::SccConfig config;
  const auto stream = workloads::makeStream(0.5);
  bool all_verified = true;
  std::printf("=== Simulated execution (32 units) ===\n");
  for (const workloads::Mode mode :
       {workloads::Mode::PthreadSingleCore, workloads::Mode::RcceOffChip,
        workloads::Mode::RcceMpb}) {
    const workloads::RunResult r = stream->run(mode, 32, config, scope);
    const bool scope_ok = r.mpb_scope_violations == 0;
    all_verified = all_verified && r.verified && scope_ok;
    std::printf("  %-16s %10.3f ms   verified=%s (%s)%s\n", workloads::modeName(mode),
                sim::ticksToMilliseconds(r.makespan), r.verified ? "yes" : "NO",
                r.detail.c_str(),
                scope_ok ? "" : "  MPB SCOPE VIOLATED");
    if (!scope_ok) {
      std::printf("    %llu accesses outside the declared MpbScope\n",
                  static_cast<unsigned long long>(r.mpb_scope_violations));
    }
  }
  return all_verified ? 0 : 1;
}

// End-to-end workflow over the whole suite: take the Pthreads C source of
// each paper benchmark, run it through the source-to-source translator, and
// execute the simulator twin in plan-driven mode — the translator's
// ExecutionPlan (per-variable placement classes, exact per-UE MPB owner
// sets, per-region cacheability; docs/execution_plan.md) drives the
// workload's realization end to end instead of hand-reasoned use_mpb bools
// and MpbScope lambdas.
//
// CI smoke-runs this binary: any verification failure or any MPB access
// outside the plan's declared owner sets exits non-zero, gating the whole
// translator→simulator pipeline including the plan-derived port isolation
// and per-region swcache routing.
#include <cstdio>

#include "translator/translator.h"
#include "workloads/benchmark.h"

int main() {
  using namespace hsm;

  const sim::SccConfig config;
  constexpr int kUnits = 16;
  bool all_ok = true;

  for (const auto& bench : workloads::standardSuite(0.4)) {
    // 1. Translate the Pthreads source.
    const std::string& source = workloads::pthreadSource(bench->name());
    translator::Translator translator;
    const translator::TranslationResult result =
        translator.translate(source, bench->name() + ".c");
    if (!result.ok) {
      std::printf("%s: translation failed:\n%s\n", bench->name().c_str(),
                  result.diagnostics.c_str());
      return 1;
    }

    std::printf("=== %s: stage-4 memory plan ===\n%s\n", bench->name().c_str(),
                result.plan.format().c_str());
    std::printf("=== %s: ExecutionPlan (translator→runtime contract) ===\n%s\n",
                bench->name().c_str(),
                result.execution_plan.toJson(kUnits).c_str());

    // 2. Execute the simulator twin with the translated plan driving
    // placement, scope, and cacheability. A failed verification or a scope
    // violation fails the process.
    for (const workloads::Mode mode :
         {workloads::Mode::RcceOffChip, workloads::Mode::RcceMpb}) {
      const workloads::RunResult r =
          bench->run(mode, kUnits, config, &result.execution_plan);
      const bool scope_ok = r.mpb_scope_violations == 0;
      // Unrealized regions mean translator/workload region-name drift: the
      // plan asked for behavior nobody realized — fail loudly, not silently.
      const bool plan_ok = r.plan_regions_unrealized == 0;
      all_ok = all_ok && r.verified && scope_ok && plan_ok;
      std::printf("  %-16s %10.3f ms   verified=%s (%s)%s%s\n",
                  workloads::modeName(mode), sim::ticksToMilliseconds(r.makespan),
                  r.verified ? "yes" : "NO", r.detail.c_str(),
                  scope_ok ? "" : "  MPB SCOPE VIOLATED",
                  plan_ok ? "" : "  PLAN REGION UNREALIZED");
      if (!scope_ok) {
        std::printf("    %llu accesses outside the plan's owner sets\n",
                    static_cast<unsigned long long>(r.mpb_scope_violations));
      }
      if (!plan_ok) {
        std::printf("    %llu plan region(s) not recognized by the workload twin\n",
                    static_cast<unsigned long long>(r.plan_regions_unrealized));
      }
    }
    std::printf("\n");
  }

  // 3. One single-core pthread baseline (Stream, the old example's anchor)
  // so the translated speedups above stay interpretable.
  const auto stream = workloads::makeStream(0.4);
  const workloads::RunResult base =
      stream->run(workloads::Mode::PthreadSingleCore, kUnits, config);
  all_ok = all_ok && base.verified;
  std::printf("=== Stream pthread-1core baseline: %.3f ms, verified=%s ===\n",
              sim::ticksToMilliseconds(base.makespan), base.verified ? "yes" : "NO");

  return all_ok ? 0 : 1;
}

// End-to-end workflow on one benchmark: take the Pthreads C source of the
// Stream benchmark (paper Algorithms 13–16), run it through the
// source-to-source translator, show the generated RCCE program, and then
// execute the simulator twin of the same workload in all three
// configurations (the paper's Figs. 6.1/6.2 data points for Stream).
#include <cstdio>

#include "translator/translator.h"
#include "workloads/benchmark.h"

int main() {
  using namespace hsm;

  // 1. Translate the Pthreads source.
  const std::string& source = workloads::pthreadSource("Stream");
  translator::Translator translator;
  const translator::TranslationResult result = translator.translate(source, "stream.c");
  if (!result.ok) {
    std::printf("translation failed:\n%s\n", result.diagnostics.c_str());
    return 1;
  }
  std::printf("=== Stage 1-3 analysis: shared data in stream.c ===\n");
  for (const auto* v : result.analysis.sharedVariables()) {
    std::printf("  %-8s %6zu bytes, ~%.0f accesses\n", v->name.c_str(), v->byte_size,
                v->totalWeightedAccesses());
  }
  std::printf("\n=== Stage 4 memory plan ===\n%s\n", result.plan.format().c_str());
  std::printf("=== Translated RCCE source ===\n%s\n", result.output_source.c_str());

  // 2. Execute the workload on the simulated SCC in all three modes. A
  // failed verification fails the process, so CI smoke-running this binary
  // gates the whole translator→simulator pipeline.
  const sim::SccConfig config;
  const auto stream = workloads::makeStream(0.5);
  bool all_verified = true;
  std::printf("=== Simulated execution (32 units) ===\n");
  for (const workloads::Mode mode :
       {workloads::Mode::PthreadSingleCore, workloads::Mode::RcceOffChip,
        workloads::Mode::RcceMpb}) {
    const workloads::RunResult r = stream->run(mode, 32, config);
    all_verified = all_verified && r.verified;
    std::printf("  %-16s %10.3f ms   verified=%s (%s)\n", workloads::modeName(mode),
                sim::ticksToMilliseconds(r.makespan), r.verified ? "yes" : "NO",
                r.detail.c_str());
  }
  return all_verified ? 0 : 1;
}

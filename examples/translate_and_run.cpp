// End-to-end workflow over the whole suite: take the Pthreads C source of
// each paper benchmark, run it through the source-to-source translator, and
// execute the simulator twin in plan-driven mode — the translator's
// ExecutionPlan (per-variable placement classes, exact per-UE MPB owner
// sets, per-region cacheability; docs/execution_plan.md) drives the
// workload's realization end to end instead of hand-reasoned use_mpb bools
// and MpbScope lambdas.
//
// CI smoke-runs this binary: any verification failure, any MPB access
// outside the plan's declared owner sets, or any DRF lint violation
// (partition/drf_lint.h — the drf_lint_ok gate) exits non-zero, gating the
// whole translator→simulator pipeline including the plan-derived port
// isolation and per-region swcache routing.
#include <cstdio>

#include "partition/drf_lint.h"
#include "translator/translator.h"
#include "workloads/benchmark.h"
#include "workloads/kv_store.h"

int main() {
  using namespace hsm;

  const sim::SccConfig config;
  constexpr int kUnits = 16;
  bool all_ok = true;
  bool drf_lint_ok = true;

  for (const auto& bench : workloads::standardSuite(0.4)) {
    // 1. Translate the Pthreads source.
    const std::string& source = workloads::pthreadSource(bench->name());
    translator::Translator translator;
    const translator::TranslationResult result =
        translator.translate(source, bench->name() + ".c");
    if (!result.ok) {
      std::printf("%s: translation failed:\n%s\n", bench->name().c_str(),
                  result.diagnostics.c_str());
      return 1;
    }

    std::printf("=== %s: stage-4 memory plan ===\n%s\n", bench->name().c_str(),
                result.plan.format().c_str());
    std::printf("=== %s: ExecutionPlan (translator→runtime contract) ===\n%s\n",
                bench->name().c_str(),
                result.execution_plan.toJson(kUnits).c_str());

    // 1b. Static DRF lint over the sharing tables + the derived plan: catch
    // contract violations (unsynchronized cached writers, placement vs
    // sharing contradictions, unaligned cached regions) before simulating.
    const partition::LintResult lint = partition::lintSharingTables(
        result.analysis, result.execution_plan, config.cache_line_bytes);
    if (!lint.ok()) {
      std::printf("=== %s: DRF LINT VIOLATIONS ===\n%s", bench->name().c_str(),
                  lint.format().c_str());
      drf_lint_ok = false;
    }

    // 2. Execute the simulator twin with the translated plan driving
    // placement, scope, and cacheability. A failed verification or a scope
    // violation fails the process.
    for (const workloads::Mode mode :
         {workloads::Mode::RcceOffChip, workloads::Mode::RcceMpb}) {
      const workloads::RunResult r =
          bench->run(mode, kUnits, config, &result.execution_plan);
      const bool scope_ok = r.mpb_scope_violations == 0;
      // Unrealized regions mean translator/workload region-name drift: the
      // plan asked for behavior nobody realized — fail loudly, not silently.
      const bool plan_ok = r.plan_regions_unrealized == 0;
      all_ok = all_ok && r.verified && scope_ok && plan_ok;
      std::printf("  %-16s %10.3f ms   verified=%s (%s)%s%s\n",
                  workloads::modeName(mode), sim::ticksToMilliseconds(r.makespan),
                  r.verified ? "yes" : "NO", r.detail.c_str(),
                  scope_ok ? "" : "  MPB SCOPE VIOLATED",
                  plan_ok ? "" : "  PLAN REGION UNREALIZED");
      if (!scope_ok) {
        std::printf("    %llu accesses outside the plan's owner sets\n",
                    static_cast<unsigned long long>(r.mpb_scope_violations));
      }
      if (!plan_ok) {
        std::printf("    %llu plan region(s) not recognized by the workload twin\n",
                    static_cast<unsigned long long>(r.plan_regions_unrealized));
      }
    }
    std::printf("\n");
  }

  // 3. One single-core pthread baseline (Stream, the old example's anchor)
  // so the translated speedups above stay interpretable.
  const auto stream = workloads::makeStream(0.4);
  const workloads::RunResult base =
      stream->run(workloads::Mode::PthreadSingleCore, kUnits, config);
  all_ok = all_ok && base.verified;
  std::printf("=== Stream pthread-1core baseline: %.3f ms, verified=%s ===\n",
              sim::ticksToMilliseconds(base.makespan), base.verified ? "yes" : "NO");

  // 4. The seventh benchmark (KV store) has no pthread source — its plan is
  // built programmatically — so it gets the plan-only lint: the same shape
  // setupKvRcce realizes (bench/micro_sim.cpp's kv section).
  {
    using partition::ControllerPlacement;
    using partition::ExecutionPlan;
    using partition::MpbPattern;
    using partition::PlacementClass;
    using partition::RegionPlan;
    const workloads::KvParams kvp{};
    std::size_t index_cap = 1;
    while (index_cap < 2 * kvp.num_keys) index_cap *= 2;
    const ExecutionPlan kv_plan{
        {RegionPlan{"kv_index", PlacementClass::kOffChipUncached, MpbPattern::kNone,
                    index_cap * 8, ControllerPlacement::kOwnerCompute},
         RegionPlan{"kv_slots", PlacementClass::kOffChipUncached, MpbPattern::kNone,
                    static_cast<std::size_t>(kvp.num_keys) * 4 * 8,
                    ControllerPlacement::kOwnerCompute},
         RegionPlan{"kv_checks", PlacementClass::kOffChipUncached, MpbPattern::kNone,
                    8 * 8}}};
    const partition::LintResult kv_lint =
        partition::lintExecutionPlan(kv_plan, config.cache_line_bytes);
    if (!kv_lint.ok()) {
      std::printf("=== KvStore: DRF LINT VIOLATIONS ===\n%s", kv_lint.format().c_str());
      drf_lint_ok = false;
    }
  }

  std::printf("=== drf_lint_ok=%s ===\n", drf_lint_ok ? "true" : "false");
  return all_ok && drf_lint_ok ? 0 : 1;
}

// Using the simulated SCC directly: a hand-written RCCE program in which
// core 0 scatters tokens to every core's MPB (RCCE put), each core
// transforms its token, posts the result back, and core 0 gathers —
// the canonical message-passing pattern the MPB was designed for.
// Prints per-phase timings and machine statistics.
#include <cstdio>
#include <vector>

#include "rcce/rcce.h"
#include "sim/machine.h"

namespace {

using namespace hsm;

sim::SimTask scatterGather(sim::CoreContext& ctx, std::uint64_t slot,
                           std::vector<int>* gathered, sim::Tick* scatter_done,
                           sim::Tick* gather_done) {
  const int n = ctx.numUes();
  if (ctx.ue() == 0) {
    // Scatter: one token into every core's MPB slice.
    for (int target = 0; target < n; ++target) {
      const int token = 1000 + target;
      co_await rcce::put(ctx, target, slot, &token, sizeof(token));
    }
    *scatter_done = ctx.now();
  }
  co_await rcce::barrier(ctx);

  // Everyone transforms its token in place.
  int token = 0;
  co_await rcce::get(ctx, ctx.ue(), slot, &token, sizeof(token));
  co_await ctx.compute(500);  // pretend to work
  token = token * 2 + ctx.ue();
  co_await rcce::put(ctx, ctx.ue(), slot, &token, sizeof(token));
  co_await rcce::barrier(ctx);

  if (ctx.ue() == 0) {
    for (int source = 0; source < n; ++source) {
      int value = 0;
      co_await rcce::get(ctx, source, slot, &value, sizeof(value));
      (*gathered)[static_cast<std::size_t>(source)] = value;
    }
    *gather_done = ctx.now();
  }
}

}  // namespace

int main() {
  using namespace hsm;
  constexpr int kUes = 16;

  sim::SccMachine machine;
  rcce::RcceEnv env(machine);
  const std::uint64_t slot = env.mpbMallocSymmetric(kUes, 16);

  std::vector<int> gathered(kUes, 0);
  sim::Tick scatter_done = 0;
  sim::Tick gather_done = 0;
  machine.launch(sim::LaunchSpec(kUes, [&](sim::CoreContext& ctx) {
    return scatterGather(ctx, slot, &gathered, &scatter_done, &gather_done);
  }));
  const sim::Tick makespan = machine.run();

  std::printf("scatter/gather across %d cores on the simulated SCC\n", kUes);
  std::printf("  scatter finished at %8.2f us\n", sim::ticksToMicroseconds(scatter_done));
  std::printf("  gather  finished at %8.2f us\n", sim::ticksToMicroseconds(gather_done));
  std::printf("  makespan            %8.2f us\n", sim::ticksToMicroseconds(makespan));
  std::printf("  events processed    %llu\n",
              static_cast<unsigned long long>(machine.engine().eventsProcessed()));

  bool ok = true;
  for (int ue = 0; ue < kUes; ++ue) {
    const int expected = (1000 + ue) * 2 + ue;
    if (gathered[static_cast<std::size_t>(ue)] != expected) ok = false;
  }
  std::printf("  gathered values %s\n", ok ? "correct" : "WRONG");

  std::printf("\nper-controller utilization:\n");
  for (std::uint32_t mc = 0; mc < machine.config().num_mem_controllers; ++mc) {
    std::printf("  MC%u: %llu requests, busy %.2f us\n", mc,
                static_cast<unsigned long long>(machine.memController(mc).requests()),
                sim::ticksToMicroseconds(machine.memController(mc).totalBusy()));
  }
  return ok ? 0 : 1;
}

// Exploring Stage 4: how the paper's Algorithm 3 places each benchmark's
// shared data as the on-chip (MPB) capacity shrinks, and where the
// frequency-aware variant diverges. Mirrors the discussion in §4.4.
#include <cstdio>

#include "partition/drf_lint.h"
#include "translator/translator.h"
#include "workloads/benchmark.h"

int main() {
  using namespace hsm;

  for (const std::string& name : {std::string("Stream"), std::string("LU")}) {
    std::printf("=== %s: shared data vs on-chip capacity ===\n", name.c_str());
    for (const std::size_t capacity : {512u, 2048u, 8192u, 65536u, 1048576u}) {
      translator::TranslatorOptions options;
      options.memory.onchip_capacity_bytes = capacity;
      translator::Translator translator(options);
      const auto result =
          translator.analyzeOnly(workloads::pthreadSource(name), name + ".c");
      if (!result.ok) {
        std::printf("analysis failed:\n%s\n", result.diagnostics.c_str());
        return 1;
      }
      std::printf("\ncapacity %zu bytes (on-chip access fraction %.3f):\n", capacity,
                  result.plan.onchipAccessFraction());
      for (const auto& d : result.plan.decisions) {
        std::printf("  %-10s %8zu B -> %s\n", d.variable->name.c_str(), d.bytes,
                    partition::placementName(d.placement));
      }
    }
    std::printf("\n");
  }

  std::printf("=== Algorithm 3 vs frequency-aware on LU at 8 KB ===\n");
  for (const bool freq : {false, true}) {
    translator::TranslatorOptions options;
    options.frequency_aware_partitioning = freq;
    translator::Translator translator(options);
    const auto result = translator.analyzeOnly(workloads::pthreadSource("LU"), "lu.c");
    std::printf("%s: on-chip access fraction %.3f\n",
                freq ? "frequency-aware" : "size-ascending (Alg 3)",
                result.plan.onchipAccessFraction());
  }

  // The full translator→runtime contract per paper benchmark: placement
  // classes refined from the stage-2 sharing tables plus the exact per-UE
  // MPB put/get owner sets the runtime's port isolation relies on
  // (docs/execution_plan.md).
  std::printf("\n=== ExecutionPlan per paper benchmark (8 UEs) ===\n");
  bool drf_lint_ok = true;
  for (const std::string& name : workloads::pthreadSourceNames()) {
    translator::Translator translator;
    const auto result =
        translator.analyzeOnly(workloads::pthreadSource(name), name + ".c");
    if (!result.ok) {
      std::printf("%s: analysis failed:\n%s\n", name.c_str(),
                  result.diagnostics.c_str());
      return 1;
    }
    std::printf("\n--- %s ---\n%s\n", name.c_str(),
                result.execution_plan.toJson(8).c_str());
    // Static DRF lint of the sharing tables against the derived plan
    // (partition/drf_lint.h): any violation fails the explorer, the same
    // drf_lint_ok gate translate_and_run enforces.
    const partition::LintResult lint =
        partition::lintSharingTables(result.analysis, result.execution_plan);
    if (!lint.ok()) {
      std::printf("%s: DRF lint violations:\n%s", name.c_str(), lint.format().c_str());
      drf_lint_ok = false;
    }
  }
  std::printf("\ndrf_lint_ok=%s\n", drf_lint_ok ? "true" : "false");
  return drf_lint_ok ? 0 : 1;
}

// Quickstart: translate the paper's Example Code 4.1 (a Pthreads program
// that stores thread-ID sums plus a locally-defined shared variable) into
// the RCCE program of Example Code 4.2, and print the analysis tables the
// paper reports (Tables 4.1 and 4.2) along with the Stage 4 memory plan.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "translator/translator.h"

namespace {

// Paper Example Code 4.1, verbatim modulo formatting.
const char* const kExample41 = R"(#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void *tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for (local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *)local);
    }
    for (local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
)";

}  // namespace

int main() {
  hsm::translator::Translator translator;
  const hsm::translator::TranslationResult result =
      translator.translate(kExample41, "example_4_1.c");

  if (!result.ok) {
    std::printf("translation failed:\n%s\n", result.diagnostics.c_str());
    return 1;
  }

  std::printf("=== Table 4.1: information extracted per variable ===\n%s\n",
              result.variableTable().c_str());
  std::printf("=== Table 4.2: variable sharing status per stage ===\n%s\n",
              result.sharingTable().c_str());
  std::printf("=== Stage 4: memory plan ===\n%s\n", result.plan.format().c_str());
  std::printf("=== Translated RCCE source (paper Example Code 4.2) ===\n%s",
              result.output_source.c_str());
  return 0;
}

// hsmcc — the command-line front end of the translator.
//
// Usage:
//   hsmcc [options] input.c [-o output.c]
//
// Options:
//   -o <file>        write the translated RCCE program to <file> (default stdout)
//   --analyze        only run stages 1-3; print Tables 4.1/4.2 and the plan
//   --offchip-only   map all shared data off-chip (the paper's Fig 6.1 config)
//   --freq-aware     use the access-frequency-aware partitioner (ablation)
//   --mpb-bytes <n>  on-chip capacity for Stage 4 (default 8192, the SCC MPB)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "translator/translator.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--analyze] [--offchip-only] [--freq-aware] "
               "[--mpb-bytes N] input.c [-o output.c]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  hsm::translator::TranslatorOptions options;
  std::string input_path;
  std::string output_path;
  bool analyze_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--analyze") {
      analyze_only = true;
    } else if (arg == "--offchip-only") {
      options.offchip_only = true;
    } else if (arg == "--freq-aware") {
      options.frequency_aware_partitioning = true;
    } else if (arg == "--mpb-bytes" && i + 1 < argc) {
      options.memory.onchip_capacity_bytes =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "-o" && i + 1 < argc) {
      output_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      input_path = arg;
    }
  }
  if (input_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "hsmcc: cannot open %s\n", input_path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  hsm::translator::Translator translator(options);
  const hsm::translator::TranslationResult result =
      analyze_only ? translator.analyzeOnly(text.str(), input_path)
                   : translator.translate(text.str(), input_path);

  if (!result.diagnostics.empty()) std::fputs(result.diagnostics.c_str(), stderr);
  if (!result.ok) return 1;

  if (analyze_only) {
    std::printf("== variable information (Table 4.1 form) ==\n%s\n",
                result.variableTable().c_str());
    std::printf("== sharing status per stage (Table 4.2 form) ==\n%s\n",
                result.sharingTable().c_str());
    std::printf("== memory plan (Stage 4) ==\n%s", result.plan.format().c_str());
    return 0;
  }

  if (output_path.empty()) {
    std::fputs(result.output_source.c_str(), stdout);
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "hsmcc: cannot write %s\n", output_path.c_str());
      return 1;
    }
    out << result.output_source;
    std::fprintf(stderr, "hsmcc: wrote %s (%zu shared variables mapped)\n",
                 output_path.c_str(), result.plan.decisions.size());
  }
  return 0;
}
